package construction

import (
	"math/rand"
	"testing"

	"repro/internal/dynamics"
	"repro/internal/game"
)

func TestTorusParamsValidate(t *testing.T) {
	bad := []TorusParams{
		{D: 1, L: 2, Delta: []int{3}},
		{D: 2, L: 0, Delta: []int{3, 3}},
		{D: 2, L: 2, Delta: []int{3}},
		{D: 2, L: 2, Delta: []int{1, 3}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	good := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusCountsFigure2(t *testing.T) {
	// Figure 2: d=2, δ=(3,4), ℓ=2. N = 2·3·4 = 24 intersection vertices,
	// n = N(1 + 2^{1}·1) = 72.
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	if p.IntersectionCount() != 24 {
		t.Fatalf("N=%d, want 24", p.IntersectionCount())
	}
	if p.VertexCount() != 72 {
		t.Fatalf("n=%d, want 72", p.VertexCount())
	}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	if tor.State.N() != 72 {
		t.Fatalf("built n=%d, want 72", tor.State.N())
	}
	if !tor.State.Graph().IsConnected() {
		t.Fatal("torus disconnected")
	}
}

func TestTorusFigure1(t *testing.T) {
	// Figure 1: d=2, δ=(15,5), ℓ=2 → N=150, n=450.
	p := TorusParams{D: 2, L: 2, Delta: []int{15, 5}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	if tor.State.N() != 450 {
		t.Fatalf("n=%d, want 450", tor.State.N())
	}
}

func TestTorusIntersectionDegreesAndOwnership(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	g := tor.State.Graph()
	for v := 0; v < tor.State.N(); v++ {
		if tor.Intersection[v] {
			if g.Degree(v) != 1<<p.D {
				t.Fatalf("intersection vertex %d degree=%d, want %d", v, g.Degree(v), 1<<p.D)
			}
			if tor.State.BoughtCount(v) != 0 {
				t.Fatalf("intersection vertex %d owns %d edges, want 0", v, tor.State.BoughtCount(v))
			}
		} else {
			if g.Degree(v) != 2 {
				t.Fatalf("path vertex %d degree=%d, want 2", v, g.Degree(v))
			}
			if b := tor.State.BoughtCount(v); b < 1 || b > 2 {
				t.Fatalf("path vertex %d owns %d edges, want 1..2", v, b)
			}
		}
	}
}

func TestTorusLemma33DistanceBound(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	g := tor.State.Graph()
	// Exhaustive check of Lemma 3.3 on all pairs.
	for x := 0; x < g.N(); x++ {
		dist := g.Distances(x)
		for y := 0; y < g.N(); y++ {
			if x == y {
				continue
			}
			lb := tor.CoordinateLowerBound(x, y)
			if dist[y] < lb {
				t.Fatalf("d(%v,%v)=%d below Lemma 3.3 bound %d",
					tor.Coords[x], tor.Coords[y], dist[y], lb)
			}
			if (tor.Intersection[x] || tor.Intersection[y]) && lb > 0 && dist[y] == lb && false {
				// strictness checked separately below
				_ = lb
			}
		}
	}
}

func TestTorusCorollary34Diameter(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 5}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	diam := tor.State.Graph().Diameter()
	if lb := tor.DiameterLowerBound(); diam < lb {
		t.Fatalf("diameter=%d below Corollary 3.4 bound %d", diam, lb)
	}
}

func TestTorusVertexAt(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	// Origin is an intersection vertex.
	v := tor.VertexAt([]int{0, 0})
	if v < 0 || !tor.Intersection[v] {
		t.Fatalf("origin lookup failed: %d", v)
	}
	// Coordinates wrap.
	if w := tor.VertexAt([]int{12, 16}); w != v { // 12 = 2·3·2, 16 = 2·4·2
		t.Fatalf("wrapped lookup %d, want %d", w, v)
	}
	if tor.VertexAt([]int{1, 0}) != -1 {
		t.Fatal("nonexistent coordinate found")
	}
}

func TestTorusThreeDimensions(t *testing.T) {
	p := TorusParams{D: 3, L: 2, Delta: []int{2, 2, 3}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	// N = 2·2·2·3 = 24, n = 24·(1+4·1) = 120.
	if tor.State.N() != 120 {
		t.Fatalf("n=%d, want 120", tor.State.N())
	}
	g := tor.State.Graph()
	for v := 0; v < g.N(); v++ {
		want := 2
		if tor.Intersection[v] {
			want = 8
		}
		if g.Degree(v) != want {
			t.Fatalf("vertex %d degree=%d, want %d", v, g.Degree(v), want)
		}
	}
	if !g.IsConnected() {
		t.Fatal("3-d torus disconnected")
	}
}

func TestTorusIsLKETheorem312Regime(t *testing.T) {
	// Theorem 3.12 regime: α=2 → ℓ=2; k=4 → d=⌈log2(4)⌉=2,
	// δ1=⌈4/2⌉+1=3. Pick δ2=4 (Figure 2's graph!). Lemmas 3.7 and 3.11
	// say every vertex is in equilibrium. Audit with the exact responder.
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	k, alpha := 4, 2.0
	cfg := dynamics.DefaultConfig(game.Max, alpha, k)
	if dev := dynamics.FirstDeviator(tor.State, cfg); dev != -1 {
		r := dynamics.MaxResponder(tor.State, dev, k, alpha)
		t.Fatalf("player %d (coords %v, intersection=%v) deviates: %+v",
			dev, tor.Coords[dev], tor.Intersection[dev], r)
	}
}

func TestTheorem312Params(t *testing.T) {
	p, err := Theorem312Params(2000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.L != 2 || p.D != 2 {
		t.Fatalf("params=%+v, want ℓ=2 d=2", p)
	}
	if p.Delta[0] != 3 {
		t.Fatalf("δ1=%d, want 3", p.Delta[0])
	}
	if p.VertexCount() > 2000 {
		t.Fatalf("vertex count %d exceeds budget", p.VertexCount())
	}
	if p.Delta[p.D-1] < p.Delta[0] {
		t.Fatalf("δd=%d < δ1=%d", p.Delta[p.D-1], p.Delta[0])
	}
	if _, err := Theorem312Params(100, 40, 2); err == nil {
		t.Fatal("oversized k accepted")
	}
	if _, err := Theorem312Params(100, 4, 0.5); err == nil {
		t.Fatal("α <= 1 accepted")
	}
}

func TestCycleStateLemma31(t *testing.T) {
	s, err := CycleState(14)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < s.N(); u++ {
		if s.BoughtCount(u) != 1 {
			t.Fatalf("player %d owns %d edges, want 1", u, s.BoughtCount(u))
		}
	}
	// k=3, α=3 >= k-1: must be an LKE (Lemma 3.1).
	cfg := dynamics.DefaultConfig(game.Max, 3, 3)
	if !dynamics.IsLKE(s, cfg) {
		t.Fatal("Lemma 3.1 cycle is not an LKE at α=3, k=3")
	}
	if _, err := CycleState(2); err == nil {
		t.Fatal("tiny cycle accepted")
	}
}

func TestHighGirthStateLemma32(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// k=2 → girth >= 6; q=3-regular on 40 vertices.
	s, err := HighGirthState(40, 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Graph().Girth(); got < 6 {
		t.Fatalf("girth=%d, want >= 6", got)
	}
	// Lemma 3.2 with q=3, α >= 1: stable for MAXNCG at k=2.
	cfg := dynamics.DefaultConfig(game.Max, 1.5, 2)
	if !dynamics.IsLKE(s, cfg) {
		t.Fatal("high-girth graph is not an LKE at α=1.5, k=2")
	}
}

func TestProjectivePlaneState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s, err := ProjectivePlaneState(3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 26 { // 2(9+3+1)
		t.Fatalf("n=%d, want 26", s.N())
	}
	if s.Graph().Girth() != 6 {
		t.Fatalf("girth=%d, want 6", s.Graph().Girth())
	}
	if _, err := ProjectivePlaneState(4, rng); err == nil {
		t.Fatal("composite order accepted")
	}
}
