package construction

import (
	"testing"

	"repro/internal/graph"
)

func TestBuildOpenTorusBasic(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	ot, err := BuildOpenTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	if ot.Graph.N() == 0 || ot.Graph.M() == 0 {
		t.Fatal("empty open torus")
	}
	// Open variant has no wrap-around: strictly fewer edges than the
	// closed torus with the same parameters.
	closed, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	if ot.Graph.M() >= closed.State.Graph().M() {
		t.Fatalf("open torus has %d edges, closed has %d", ot.Graph.M(), closed.State.Graph().M())
	}
}

func TestOpenTorusLemma35(t *testing.T) {
	for _, p := range []TorusParams{
		{D: 2, L: 2, Delta: []int{3, 4}},
		{D: 2, L: 1, Delta: []int{4, 4}},
		{D: 3, L: 2, Delta: []int{2, 2, 3}},
	} {
		ot, err := BuildOpenTorus(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if x, y := ot.CheckLemma35(); x != -1 {
			t.Fatalf("%+v: Lemma 3.5 violated at %v vs %v: d=%d < bound=%d",
				p, ot.Coords[x], ot.Coords[y],
				ot.Graph.Dist(x, y), ot.Lemma35Bound(x, y))
		}
	}
}

func TestOpenTorusVertexAt(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	ot, err := BuildOpenTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	// (ℓ·1, ℓ·1) = (2,2) is an intersection vertex (a=1 parity odd).
	v := ot.VertexAt([]int{2, 2})
	if v < 0 || !ot.Intersection[v] {
		t.Fatalf("lookup (2,2): %d", v)
	}
	if ot.VertexAt([]int{999, 999}) != -1 {
		t.Fatal("phantom vertex found")
	}
}

func TestCheckLemma36OnStar(t *testing.T) {
	// Star subdivided: u at the center of three length-3 legs. With
	// h = 3, L = the three leg tips satisfies d(u,tip)=3 and pairwise 6
	// >= 2h-2=4; reaching all tips within <3 needs 3 edges.
	g := graph.New(10)
	// legs: u=0; leg A: 1,2,3; leg B: 4,5,6; leg C: 7,8,9.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 6)
	g.AddEdge(0, 7)
	g.AddEdge(7, 8)
	g.AddEdge(8, 9)
	L := []int{3, 6, 9}

	// A valid F: one edge per tip region → no violation.
	F := []graph.Edge{{U: 0, V: 3}, {U: 0, V: 6}, {U: 0, V: 9}}
	if err := CheckLemma36(g, 0, L, F, 3); err != nil {
		t.Fatal(err)
	}
	// Too few edges cannot reach all tips within < 3 — the check passes
	// vacuously (the conclusion's premise fails).
	if err := CheckLemma36(g, 0, L, F[:1], 3); err != nil {
		t.Fatal(err)
	}
	// Hypothesis violation: a tip too close.
	if err := CheckLemma36(g, 0, []int{1}, nil, 3); err == nil {
		t.Fatal("close vertex accepted in L")
	}
	// F edge not incident to u.
	if err := CheckLemma36(g, 0, L, []graph.Edge{{U: 1, V: 2}}, 3); err == nil {
		t.Fatal("non-incident F edge accepted")
	}
}

func TestFhSetOnClosedTorus(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pick any intersection vertex; F_h(v) should contain 2^d = 4
	// vertices at distance exactly h for h <= k* range.
	var v int = -1
	for i, is := range tor.Intersection {
		if is {
			v = i
			break
		}
	}
	if v == -1 {
		t.Fatal("no intersection vertex")
	}
	for _, h := range []int{1, 2, 3} {
		fh := tor.FhSet(v, h)
		if len(fh) != 4 {
			t.Fatalf("h=%d: |F_h|=%d, want 4", h, len(fh))
		}
		dist := tor.State.Graph().Distances(v)
		for _, w := range fh {
			if dist[w] != h {
				t.Fatalf("h=%d: d(v,%v)=%d, want exactly h (Lemma 3.3 equality)",
					h, tor.Coords[w], dist[w])
			}
		}
	}
}

func TestFhSetRejectsPathVertex(t *testing.T) {
	p := TorusParams{D: 2, L: 2, Delta: []int{3, 4}}
	tor, err := BuildTorus(p)
	if err != nil {
		t.Fatal(err)
	}
	var pathV = -1
	for i, is := range tor.Intersection {
		if !is {
			pathV = i
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FhSet on a path vertex did not panic")
		}
	}()
	tor.FhSet(pathV, 1)
}
