package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Fatal("mean wrong")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-sample variance not 0")
	}
	// Known: variance of {2,4,4,4,5,5,7,9} (sample) = 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 32.0/7, 1e-12) {
		t.Fatalf("variance=%v, want %v", Variance(xs), 32.0/7)
	}
	if !almost(StdDev(xs), math.Sqrt(32.0/7), 1e-12) {
		t.Fatal("stddev wrong")
	}
}

func TestTCrit95(t *testing.T) {
	if !math.IsInf(TCrit95(0), 1) {
		t.Fatal("df=0 should be +Inf")
	}
	if !almost(TCrit95(1), 12.706, 1e-9) {
		t.Fatal("df=1 critical value")
	}
	if !almost(TCrit95(19), 2.093, 1e-9) {
		t.Fatal("df=19 critical value (the paper's 20-sample experiments)")
	}
	if !almost(TCrit95(1000), 1.96, 1e-9) {
		t.Fatal("large df should fall back to 1.96")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 10, 10})
	if s.Mean != 10 || s.HalfWidth != 0 {
		t.Fatalf("constant sample: %+v", s)
	}
	s1 := Summarize([]float64{8, 12})
	// sd = √8, hw = 12.706·√8/√2 = 12.706·2 = 25.412.
	if !almost(s1.HalfWidth, 25.412, 1e-9) {
		t.Fatalf("hw=%v, want 25.412", s1.HalfWidth)
	}
	if Summarize(nil).HalfWidth != 0 {
		t.Fatal("empty summary hw")
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{1, 2, 3})
	if !almost(s.Mean, 2, 1e-12) || s.N != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max not 0")
	}
}

func TestQuickCIContainsMeanShift(t *testing.T) {
	// Shifting a sample shifts the mean and preserves the half-width.
	f := func(raw []float64, shiftRaw int8) bool {
		if len(raw) < 2 || len(raw) > 40 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(raw))
		for i, x := range raw {
			shifted[i] = x + shift
		}
		a, b := Summarize(raw), Summarize(shifted)
		return almost(b.Mean, a.Mean+shift, 1e-6) && almost(a.HalfWidth, b.HalfWidth, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		return Variance(raw) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
