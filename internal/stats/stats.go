// Package stats provides the summary statistics used throughout the
// experimental section (§5.1): sample means with 95% confidence intervals
// via Student's t distribution (the paper reports "average statistics …
// along with their 95% confidence intervals").
package stats

import "math"

// t95 holds two-sided 97.5% Student-t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation 1.96 is used.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% critical value for df degrees of
// freedom (1.96 for df > 30; +Inf for df < 1, signalling "no interval").
func TCrit95(df int) float64 {
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(t95):
		return t95[df-1]
	default:
		return 1.96
	}
}

// Mean returns the sample mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary is a mean with its 95% confidence half-width, rendered as
// "mean ± hw" in the paper's tables (and served as JSON by the sweepd
// summary endpoint).
type Summary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// HalfWidth is the 95% CI half-width; 0 when n < 2.
	HalfWidth float64 `json:"half_width"`
}

// Summarize computes the mean and 95% CI half-width of a sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	s := Summary{N: n, Mean: Mean(xs)}
	if n >= 2 {
		s.HalfWidth = TCrit95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
	}
	return s
}

// SummarizeInts converts and summarizes an int sample.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Min returns the minimum (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
