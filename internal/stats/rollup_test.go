package stats

import "testing"

func TestRollupGroupsAndSummarizes(t *testing.T) {
	type key struct {
		Alpha float64
		K     int
	}
	r := NewRollup[key]("diameter", "rounds")
	r.Add(key{1, 2}, 4, 10)
	r.Add(key{2, 2}, 6, 20)
	r.Add(key{1, 2}, 8, 30)

	keys := r.Keys()
	if len(keys) != 2 || keys[0] != (key{1, 2}) || keys[1] != (key{2, 2}) {
		t.Fatalf("keys = %v (want first-insertion order)", keys)
	}
	if m := r.Metrics(); len(m) != 2 || m[0] != "diameter" || m[1] != "rounds" {
		t.Fatalf("metrics = %v", m)
	}

	s := r.Summaries(key{1, 2})
	if want := Summarize([]float64{4, 8}); s["diameter"] != want {
		t.Fatalf("diameter = %+v, want %+v", s["diameter"], want)
	}
	if want := Summarize([]float64{10, 30}); s["rounds"] != want {
		t.Fatalf("rounds = %+v, want %+v", s["rounds"], want)
	}
	if s := r.Summaries(key{2, 2}); s["diameter"].N != 1 || s["diameter"].Mean != 6 {
		t.Fatalf("singleton group = %+v", s["diameter"])
	}

	// Unknown keys summarize as empty, not panic.
	if s := r.Summaries(key{9, 9}); s["diameter"].N != 0 || s["rounds"].N != 0 {
		t.Fatalf("unknown key = %+v", s)
	}
}

func TestRollupArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewRollup[int]("a", "b").Add(1, 2.0)
}
