package stats

// Rollup accumulates parallel named metric samples per group key — the
// shape of every roll-up in the paper's §5 (mean ± 95% CI per (α, k)
// group) — and summarizes each (key, metric) pair. Keys are reported in
// first-insertion order, so feeding canonically ordered sweep results
// yields canonically ordered groups.
type Rollup[K comparable] struct {
	metrics []string
	keys    []K
	samples map[K][][]float64 // per key: one sample slice per metric
}

// NewRollup declares the metric columns every Add must supply, in order.
func NewRollup[K comparable](metrics ...string) *Rollup[K] {
	return &Rollup[K]{metrics: metrics, samples: make(map[K][][]float64)}
}

// Add appends one observation of every metric for key; values match the
// declared metrics one for one.
func (r *Rollup[K]) Add(key K, values ...float64) {
	if len(values) != len(r.metrics) {
		panic("stats: Rollup.Add arity mismatch")
	}
	cols, ok := r.samples[key]
	if !ok {
		cols = make([][]float64, len(r.metrics))
		r.keys = append(r.keys, key)
	}
	for i, v := range values {
		cols[i] = append(cols[i], v)
	}
	r.samples[key] = cols
}

// Keys lists the group keys in first-insertion order.
func (r *Rollup[K]) Keys() []K { return r.keys }

// Metrics lists the declared metric names.
func (r *Rollup[K]) Metrics() []string { return r.metrics }

// Summaries returns the per-metric Summarize roll-up for one key (zero
// summaries for a key never added).
func (r *Rollup[K]) Summaries(key K) map[string]Summary {
	cols := r.samples[key]
	out := make(map[string]Summary, len(r.metrics))
	for i, m := range r.metrics {
		var xs []float64
		if cols != nil {
			xs = cols[i]
		}
		out[m] = Summarize(xs)
	}
	return out
}
