package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// PartialGrid returns the connected near-square grid on exactly n
// vertices: rows = ⌊√n⌋, cols = ⌈n/rows⌉, vertex (r, c) has id r*cols+c,
// and ids ≥ n simply do not exist (the last row may be partial). Every
// 4-neighborhood edge whose endpoints both exist is present, so the
// graph is connected for all n ≥ 1: each row is a horizontal path and
// every vertex below row 0 has its up-neighbor.
func PartialGrid(n int) *graph.Graph {
	if n < 1 {
		panic("gen: PartialGrid needs n >= 1")
	}
	rows := int(math.Sqrt(float64(n)))
	if rows < 1 {
		rows = 1
	}
	cols := (n + rows - 1) / rows
	g := graph.New(n)
	for v := 0; v < n; v++ {
		if v%cols+1 < cols && v+1 < n {
			g.AddEdge(v, v+1)
		}
		if v+cols < n {
			g.AddEdge(v, v+cols)
		}
	}
	return g
}

// RandomConnectedGrid is the grid analogue of GNPConnected, ported from
// goblin-adventures' generator (SNIPPETS.md §1): start from the
// near-square grid on n vertices (PartialGrid), delete each edge
// independently with probability del, and resample until the survivor is
// connected. del = 0 returns the full grid. It gives up after maxTries
// attempts — for moderate del the grid's edge surplus over a spanning
// tree makes connectivity likely, and callers needing a hard guarantee
// fall back to the undeleted grid.
func RandomConnectedGrid(n int, del float64, rng *rand.Rand, maxTries int) (*graph.Graph, error) {
	if del < 0 || del >= 1 {
		panic("gen: RandomConnectedGrid deletion probability out of [0,1)")
	}
	if maxTries < 1 {
		maxTries = 1
	}
	full := PartialGrid(n)
	if del == 0 {
		return full, nil
	}
	edges := full.Edges()
	for try := 0; try < maxTries; try++ {
		g := graph.New(n)
		for _, e := range edges {
			if rng.Float64() >= del {
				g.AddEdge(e.U, e.V)
			}
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: no connected grid on %d vertices (del=%g) in %d tries", n, del, maxTries)
}
