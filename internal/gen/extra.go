package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices:
// vertices are bit strings, edges connect strings at Hamming distance 1.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 20 {
		panic("gen: hypercube dimension out of [0,20]")
	}
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if w > v {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	if a < 0 || b < 0 {
		panic("gen: negative part size")
	}
	g := graph.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path on spine vertices
// with legs leaves attached to each spine vertex. Spine vertices come
// first (ids 0..spine-1).
func Caterpillar(spine, legs int) *graph.Graph {
	if spine < 1 || legs < 0 {
		panic("gen: caterpillar needs spine >= 1, legs >= 0")
	}
	g := graph.New(spine + spine*legs)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(i, next)
			next++
		}
	}
	return g
}

// PreferentialAttachmentTree grows a tree by preferential attachment
// (Barabási–Albert with m = 1): each new vertex attaches to an existing
// vertex with probability proportional to its degree. The result is a
// scale-free tree — a heavier-tailed alternative to the paper's uniform
// random trees for dynamics experiments.
func PreferentialAttachmentTree(n int, rng *rand.Rand) *graph.Graph {
	if n < 1 {
		panic("gen: PreferentialAttachmentTree needs n >= 1")
	}
	g := graph.New(n)
	if n == 1 {
		return g
	}
	// endpoints records each edge endpoint twice; sampling a uniform
	// entry is degree-proportional sampling.
	endpoints := make([]int, 0, 2*(n-1))
	g.AddEdge(0, 1)
	endpoints = append(endpoints, 0, 1)
	for v := 2; v < n; v++ {
		target := endpoints[rng.Intn(len(endpoints))]
		g.AddEdge(v, target)
		endpoints = append(endpoints, v, target)
	}
	return g
}

// RandomRegular samples a q-regular graph on n vertices via the pairing
// model with rejection (retry on self-loops/multi-edges). n*q must be
// even and q < n. It retries up to maxTries full pairings before giving
// up, which is ample for the moderate (n, q) used in experiments.
func RandomRegular(n, q int, rng *rand.Rand, maxTries int) (*graph.Graph, bool) {
	if n*q%2 != 0 || q >= n || q < 0 {
		return nil, false
	}
	if maxTries < 1 {
		maxTries = 1
	}
	stubs := make([]int, 0, n*q)
	for try := 0; try < maxTries; try++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < q; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := graph.New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || !g.AddEdge(u, v) {
				ok = false
				break
			}
		}
		if ok {
			return g, true
		}
	}
	return nil, false
}
