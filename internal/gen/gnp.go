package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// GNP returns an Erdős–Rényi random graph G(n,p): every unordered vertex
// pair becomes an edge independently with probability p.
func GNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	if p < 0 || p > 1 {
		panic("gen: GNP probability out of [0,1]")
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GNPConnected samples G(n,p) graphs until a connected one appears,
// mirroring §5.2: "Any remaining unconnected graph was discarded and
// regenerated from scratch." It gives up after maxTries attempts (use a
// generous bound; the paper's parameter choices make connectivity likely).
func GNPConnected(n int, p float64, rng *rand.Rand, maxTries int) (*graph.Graph, error) {
	if maxTries < 1 {
		maxTries = 1
	}
	for try := 0; try < maxTries; try++ {
		g := GNP(n, p, rng)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: no connected G(%d,%g) sample in %d tries", n, p, maxTries)
}
