package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// RandomTree returns a tree on n vertices drawn uniformly at random from the
// n^(n-2) labelled trees (Cayley's formula), by decoding a uniformly random
// Prüfer sequence. This matches the paper's "picked a tree uniformly at
// random from the set of all possible trees on n vertices" (§5.2).
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	if n < 1 {
		panic("gen: RandomTree needs n >= 1")
	}
	if n <= 2 {
		g := graph.New(n)
		if n == 2 {
			g.AddEdge(0, 1)
		}
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	return PruferDecode(seq)
}

// PruferDecode builds the labelled tree on len(seq)+2 vertices encoded by
// the Prüfer sequence seq. Every entry must lie in [0, len(seq)+2).
func PruferDecode(seq []int) *graph.Graph {
	n := len(seq) + 2
	g := graph.New(n)
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			panic("gen: Prüfer sequence entry out of range")
		}
		degree[v]++
	}
	// ptr scans for the smallest leaf; leaf tracks the current minimal leaf
	// as in the classic linear-time decoder.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		g.AddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// The last two remaining leaves are leaf and n-1.
	g.AddEdge(leaf, n-1)
	return g
}

// PruferEncode returns the Prüfer sequence of a labelled tree on n >= 2
// vertices. It panics when g is not a tree.
func PruferEncode(g *graph.Graph) []int {
	n := g.N()
	if n < 2 {
		panic("gen: PruferEncode needs n >= 2")
	}
	if g.M() != n-1 || !g.IsConnected() {
		panic("gen: PruferEncode input is not a tree")
	}
	degree := make([]int, n)
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		degree[v] = g.Degree(v)
		adj[v] = make(map[int]bool, degree[v])
		for _, w := range g.Neighbors(v) {
			adj[v][int(w)] = true
		}
	}
	seq := make([]int, 0, n-2)
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for len(seq) < n-2 {
		var parent int
		for w := range adj[leaf] {
			parent = w
		}
		seq = append(seq, parent)
		delete(adj[parent], leaf)
		degree[parent]--
		degree[leaf]--
		if degree[parent] == 1 && parent < ptr {
			leaf = parent
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq
}
