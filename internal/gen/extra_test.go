package gen

import (
	"math/rand"
	"testing"
)

func TestHypercube(t *testing.T) {
	q3 := Hypercube(3)
	if q3.N() != 8 || q3.M() != 12 {
		t.Fatalf("Q3: n=%d m=%d", q3.N(), q3.M())
	}
	for v := 0; v < 8; v++ {
		if q3.Degree(v) != 3 {
			t.Fatalf("Q3 degree(%d)=%d", v, q3.Degree(v))
		}
	}
	if q3.Diameter() != 3 {
		t.Fatalf("Q3 diameter=%d", q3.Diameter())
	}
	if q3.Girth() != 4 {
		t.Fatalf("Q3 girth=%d", q3.Girth())
	}
	if Hypercube(0).N() != 1 {
		t.Fatal("Q0 should be a single vertex")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("huge dimension accepted")
		}
	}()
	Hypercube(25)
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K3,4: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || g.HasEdge(3, 4) {
		t.Fatal("intra-part edge present")
	}
	if !g.HasEdge(0, 3) {
		t.Fatal("cross edge missing")
	}
	if g.Girth() != 4 {
		t.Fatalf("K3,4 girth=%d", g.Girth())
	}
	if CompleteBipartite(0, 5).M() != 0 {
		t.Fatal("K0,5 has edges")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, 2)
	if g.N() != 12 || g.M() != 11 {
		t.Fatalf("caterpillar: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("caterpillar disconnected")
	}
	// Spine interior vertices: 2 spine neighbors + 2 legs.
	if g.Degree(1) != 4 {
		t.Fatalf("spine degree=%d", g.Degree(1))
	}
	// A tree: n-1 edges.
	if g.M() != g.N()-1 {
		t.Fatal("not a tree")
	}
}

func TestPreferentialAttachmentTree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := PreferentialAttachmentTree(200, rng)
	if g.M() != 199 || !g.IsConnected() {
		t.Fatalf("PA tree: m=%d connected=%v", g.M(), g.IsConnected())
	}
	// Scale-free trees grow much larger hubs than uniform random trees
	// (uniform max degree ~5-6 at n=200; PA typically > 10).
	maxDeg := 0
	for trial := 0; trial < 10; trial++ {
		if d := PreferentialAttachmentTree(200, rng).MaxDegree(); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Fatalf("PA max degree over 10 trials = %d, expected a hub", maxDeg)
	}
	if PreferentialAttachmentTree(1, rng).N() != 1 {
		t.Fatal("n=1")
	}
	if PreferentialAttachmentTree(2, rng).M() != 1 {
		t.Fatal("n=2")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	g, ok := RandomRegular(30, 4, rng, 200)
	if !ok {
		t.Fatal("no 4-regular graph found")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(v))
		}
	}
	// Parity violation.
	if _, ok := RandomRegular(5, 3, rng, 10); ok {
		t.Fatal("odd n*q accepted")
	}
	// q >= n.
	if _, ok := RandomRegular(4, 4, rng, 10); ok {
		t.Fatal("q >= n accepted")
	}
}
