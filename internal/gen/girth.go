package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ProjectivePlaneIncidence returns the point-line incidence graph of the
// projective plane PG(2,q) for a prime q: a bipartite, (q+1)-regular graph
// on 2(q²+q+1) vertices with girth exactly 6.
//
// This is the exact g=6 member of the dense high-girth family invoked in
// Lemma 3.2 (the paper cites Lazebnik–Ustimenko–Woldar; incidence graphs of
// projective planes achieve the same parameters for girth 6 and are
// constructible with elementary modular arithmetic — see DESIGN.md §3).
// Points occupy ids [0, q²+q+1); lines occupy ids [q²+q+1, 2(q²+q+1)).
func ProjectivePlaneIncidence(q int) (*graph.Graph, error) {
	if q < 2 || !isPrime(q) {
		return nil, fmt.Errorf("gen: projective plane order %d is not a prime", q)
	}
	// Normalized homogeneous coordinates over GF(q): the q²+q+1 points are
	// (1, a, b), (0, 1, a), (0, 0, 1). Lines use the same normalization via
	// duality; point (x,y,z) is on line [a,b,c] iff ax+by+cz ≡ 0 (mod q).
	coords := make([][3]int, 0, q*q+q+1)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			coords = append(coords, [3]int{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		coords = append(coords, [3]int{0, 1, a})
	}
	coords = append(coords, [3]int{0, 0, 1})

	np := len(coords)
	g := graph.New(2 * np)
	for pi, p := range coords {
		for li, l := range coords {
			if (p[0]*l[0]+p[1]*l[1]+p[2]*l[2])%q == 0 {
				g.AddEdge(pi, np+li)
			}
		}
	}
	return g, nil
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// RegularHighGirth builds a q-regular graph on n vertices with girth at
// least g, using randomized greedy growth with restarts: edges are added
// between degree-deficient vertices whose current distance is at least g-1,
// so no cycle shorter than g can close. It returns an error when no graph
// is found within maxRestarts attempts (the construction is infeasible when
// n is too small relative to q and g — roughly n must exceed the Moore
// bound for (q,g)).
//
// The resulting graph is exactly q-regular and has certified girth >= g;
// density is near-optimal for small g, weaker than algebraic constructions
// for large g (documented substitution, DESIGN.md §3).
func RegularHighGirth(n, q, g int, rng *rand.Rand, maxRestarts int) (*graph.Graph, error) {
	if q < 2 || g < 3 {
		return nil, fmt.Errorf("gen: RegularHighGirth needs q >= 2 and g >= 3 (got q=%d g=%d)", q, g)
	}
	if n*q%2 != 0 {
		return nil, fmt.Errorf("gen: n*q must be even (got n=%d q=%d)", n, q)
	}
	if q >= n {
		return nil, fmt.Errorf("gen: need q < n (got q=%d n=%d)", q, n)
	}
	if maxRestarts < 1 {
		maxRestarts = 1
	}
	for restart := 0; restart < maxRestarts; restart++ {
		if gr := tryRegularHighGirth(n, q, g, rng); gr != nil {
			return gr, nil
		}
	}
	return nil, fmt.Errorf("gen: no %d-regular girth-%d graph on %d vertices found in %d restarts", q, g, n, maxRestarts)
}

func tryRegularHighGirth(n, q, g int, rng *rand.Rand) *graph.Graph {
	gr := graph.New(n)
	deficient := make([]int, n)
	for i := range deficient {
		deficient[i] = i
	}
	dist := make([]int, n)
	queue := make([]int32, n)
	// Repeatedly pick a random deficient vertex and connect it to a random
	// compatible deficient partner (distance >= g-1, not already adjacent).
	stall := 0
	for len(deficient) > 1 && stall < 4*n*q {
		ui := rng.Intn(len(deficient))
		u := deficient[ui]
		gr.BFSWithin(u, g-2, dist, queue)
		// Candidates: deficient vertices at distance >= g-1 from u.
		var candidates []int
		for _, v := range deficient {
			if v != u && dist[v] == graph.Unreachable {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			stall++
			continue
		}
		v := candidates[rng.Intn(len(candidates))]
		gr.AddEdge(u, v)
		stall = 0
		// Compact the deficient list.
		next := deficient[:0]
		for _, w := range deficient {
			if gr.Degree(w) < q {
				next = append(next, w)
			}
		}
		deficient = next
	}
	if len(deficient) > 0 {
		return nil
	}
	return gr
}
