// Package gen builds the input graph families used throughout the paper:
// deterministic topologies (paths, cycles, stars, cliques, grids), uniform
// random trees via Prüfer sequences (§5.2), Erdős–Rényi G(n,p) graphs
// (§5.2), and the high-girth regular graphs underlying the dense lower
// bounds (Lemma 3.2, Theorem 4.3).
package gen

import "repro/internal/graph"

// Path returns the path graph v0-v1-...-v_{n-1}.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: cycle needs n >= 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Star returns the star graph with center vertex 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Grid returns the rows x cols king-less grid graph (4-neighborhood).
// Vertex (r,c) has id r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: grid needs positive dimensions")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Torus returns the rows x cols toroidal grid (wrap-around 4-neighborhood).
// Both dimensions must be at least 3 to keep the graph simple.
func Torus(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs dimensions >= 3")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols))
			g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}
