package gen

import (
	"math/rand"
	"testing"
)

func TestPartialGrid(t *testing.T) {
	g := PartialGrid(16) // 4x4
	if g.N() != 16 || g.M() != 24 {
		t.Fatalf("PartialGrid(16): n=%d m=%d, want 16, 24", g.N(), g.M())
	}
	if g.Diameter() != 6 {
		t.Fatalf("PartialGrid(16): diameter=%d, want 6", g.Diameter())
	}
	// 3 rows x 4 cols with ids 10, 11 missing from the last row:
	// 3+3+1 horizontal edges plus 6 vertical ones.
	g = PartialGrid(10)
	if g.N() != 10 || g.M() != 13 {
		t.Fatalf("PartialGrid(10): n=%d m=%d, want 10, 13", g.N(), g.M())
	}
	if PartialGrid(1).M() != 0 {
		t.Fatal("PartialGrid(1) should have no edges")
	}
	for n := 1; n <= 60; n++ {
		if !PartialGrid(n).IsConnected() {
			t.Fatalf("PartialGrid(%d) is not connected", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PartialGrid(0) did not panic")
		}
	}()
	PartialGrid(0)
}

func TestRandomConnectedGridZeroDeletion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomConnectedGrid(20, 0, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(PartialGrid(20)) {
		t.Fatal("RandomConnectedGrid(del=0) should be the full grid")
	}
}

func TestRandomConnectedGridDensity(t *testing.T) {
	const (
		n       = 36
		del     = 0.3
		samples = 300
	)
	full := PartialGrid(n).M()
	rng := rand.New(rand.NewSource(7))
	total := 0
	for i := 0; i < samples; i++ {
		g, err := RandomConnectedGrid(n, del, rng, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatal("RandomConnectedGrid returned a disconnected graph")
		}
		if g.N() != n {
			t.Fatalf("n=%d, want %d", g.N(), n)
		}
		total += g.M()
	}
	// Each edge survives with probability 1-del; conditioning on
	// connectivity biases the count upward only slightly at this del.
	mean := float64(total) / samples
	expected := (1 - del) * float64(full)
	if mean < 0.85*expected || mean > 1.15*expected {
		t.Fatalf("mean surviving edges %.1f, expected about %.1f", mean, expected)
	}
}

func TestRandomConnectedGridUniformity(t *testing.T) {
	// Every grid edge should survive with roughly the same frequency
	// 1-del. Conditioning on connectivity favors edges at low-degree
	// corners a little, hence the generous band.
	const (
		n       = 25
		del     = 0.25
		samples = 400
	)
	full := PartialGrid(n)
	edges := full.Edges()
	counts := make([]int, len(edges))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < samples; i++ {
		g, err := RandomConnectedGrid(n, del, rng, 200)
		if err != nil {
			t.Fatal(err)
		}
		for j, e := range edges {
			if g.HasEdge(e.U, e.V) {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		freq := float64(c) / samples
		if freq < 1-del-0.12 || freq > 1-del+0.12 {
			t.Fatalf("edge %v survival frequency %.3f, expected about %.2f", edges[j], freq, 1-del)
		}
	}
}

func TestRandomConnectedGridFails(t *testing.T) {
	// At del=0.9 a 7x7 grid keeps ~8 of its 84 edges — never connected,
	// so the retry budget must be exhausted and reported.
	rng := rand.New(rand.NewSource(3))
	if _, err := RandomConnectedGrid(49, 0.9, rng, 5); err == nil {
		t.Fatal("expected an error for del=0.9")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RandomConnectedGrid(del=1) did not panic")
		}
	}()
	RandomConnectedGrid(10, 1, rng, 5)
}
