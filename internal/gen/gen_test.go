package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("Path(5): n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Fatalf("Path(5) diameter = %d, want 4", g.Diameter())
	}
	if Path(1).M() != 0 {
		t.Fatal("Path(1) should have no edges")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("Cycle(6): m=%d, want 6", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Cycle(6): degree(%d)=%d, want 2", v, g.Degree(v))
		}
	}
	if g.Girth() != 6 {
		t.Fatalf("Cycle(6) girth = %d, want 6", g.Girth())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestStarAndComplete(t *testing.T) {
	s := Star(7)
	if s.M() != 6 || s.Degree(0) != 6 {
		t.Fatalf("Star(7): m=%d deg0=%d", s.M(), s.Degree(0))
	}
	k := Complete(6)
	if k.M() != 15 || k.Diameter() != 1 {
		t.Fatalf("K6: m=%d diam=%d", k.M(), k.Diameter())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("Grid(3,4): n=%d", g.N())
	}
	if g.M() != 3*3+2*4 { // horizontal: 3 rows * 3, vertical: 2*4
		t.Fatalf("Grid(3,4): m=%d, want 17", g.M())
	}
	if g.Diameter() != 2+3 {
		t.Fatalf("Grid(3,4): diameter=%d, want 5", g.Diameter())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("Torus(4,5): n=%d m=%d, want 20, 40", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Torus vertex %d degree=%d, want 4", v, g.Degree(v))
		}
	}
	if g.Diameter() != 2+2 {
		t.Fatalf("Torus(4,5) diameter=%d, want 4", g.Diameter())
	}
}

func TestPruferDecodeKnown(t *testing.T) {
	// Sequence [3,3,3,4] encodes the tree with edges
	// (0,3),(1,3),(2,3),(3,4),(4,5) on 6 vertices.
	g := PruferDecode([]int{3, 3, 3, 4})
	want := []graph.Edge{{U: 0, V: 3}, {U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
}

func TestPruferRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%30)
		rng := rand.New(rand.NewSource(seed))
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = rng.Intn(n)
		}
		tree := PruferDecode(seq)
		back := PruferEncode(tree)
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 10, 50, 200} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("RandomTree(%d): n=%d", n, g.N())
		}
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("RandomTree(%d): m=%d, want %d", n, g.M(), n-1)
			}
		}
		if !g.IsConnected() {
			t.Fatalf("RandomTree(%d) disconnected", n)
		}
	}
}

func TestRandomTreeUniformity(t *testing.T) {
	// On 3 labelled vertices there are exactly 3 trees (one per center).
	// Check each appears with roughly 1/3 frequency.
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		g := RandomTree(3, rng)
		for v := 0; v < 3; v++ {
			if g.Degree(v) == 2 {
				counts[v]++
			}
		}
	}
	for v := 0; v < 3; v++ {
		frac := float64(counts[v]) / trials
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("center %d frequency %.3f, want ~1/3", v, frac)
		}
	}
}

func TestPruferEncodeRejectsNonTree(t *testing.T) {
	g := Cycle(4)
	defer func() {
		if recover() == nil {
			t.Fatal("PruferEncode(cycle) did not panic")
		}
	}()
	PruferEncode(g)
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	empty := GNP(10, 0, rng)
	if empty.M() != 0 {
		t.Fatalf("GNP(10,0): m=%d", empty.M())
	}
	full := GNP(10, 1, rng)
	if full.M() != 45 {
		t.Fatalf("GNP(10,1): m=%d, want 45", full.M())
	}
}

func TestGNPDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, p = 120, 0.1
	total := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		total += GNP(n, p, rng).M()
	}
	mean := float64(total) / trials
	want := p * float64(n*(n-1)/2)
	if mean < 0.85*want || mean > 1.15*want {
		t.Fatalf("GNP mean edges %.1f, want ~%.1f", mean, want)
	}
}

func TestGNPConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := GNPConnected(100, 0.06, rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("GNPConnected returned a disconnected graph")
	}
}

func TestGNPConnectedFails(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := GNPConnected(50, 0, rng, 3); err == nil {
		t.Fatal("GNPConnected with p=0 should fail")
	}
}

func TestProjectivePlaneIncidence(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7} {
		g, err := ProjectivePlaneIncidence(q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		np := q*q + q + 1
		if g.N() != 2*np {
			t.Fatalf("q=%d: n=%d, want %d", q, g.N(), 2*np)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("q=%d: vertex %d degree %d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		if girth := g.Girth(); girth != 6 {
			t.Fatalf("q=%d: girth=%d, want 6", q, girth)
		}
		if !g.IsConnected() {
			t.Fatalf("q=%d: incidence graph disconnected", q)
		}
	}
}

func TestProjectivePlaneRejectsComposite(t *testing.T) {
	for _, q := range []int{1, 4, 6, 9} {
		if _, err := ProjectivePlaneIncidence(q); err == nil {
			t.Errorf("q=%d accepted, want error", q)
		}
	}
}

func TestRegularHighGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cases := []struct{ n, q, g int }{
		{30, 3, 5},
		{60, 3, 6},
		{50, 4, 5},
		{100, 3, 7},
	}
	for _, c := range cases {
		gr, err := RegularHighGirth(c.n, c.q, c.g, rng, 50)
		if err != nil {
			t.Fatalf("n=%d q=%d g=%d: %v", c.n, c.q, c.g, err)
		}
		for v := 0; v < gr.N(); v++ {
			if gr.Degree(v) != c.q {
				t.Fatalf("n=%d q=%d g=%d: vertex %d degree %d", c.n, c.q, c.g, v, gr.Degree(v))
			}
		}
		if girth := gr.Girth(); girth < c.g {
			t.Fatalf("n=%d q=%d g=%d: girth=%d", c.n, c.q, c.g, girth)
		}
	}
}

func TestRegularHighGirthRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := RegularHighGirth(11, 3, 5, rng, 5); err == nil {
		t.Error("odd n*q accepted")
	}
	if _, err := RegularHighGirth(10, 1, 5, rng, 5); err == nil {
		t.Error("q=1 accepted")
	}
	if _, err := RegularHighGirth(4, 6, 5, rng, 5); err == nil {
		t.Error("q >= n accepted")
	}
	// Infeasible: K4 is the only 3-regular graph on 4 vertices, girth 3.
	if _, err := RegularHighGirth(4, 3, 5, rng, 5); err == nil {
		t.Error("infeasible parameters accepted")
	}
}
