// Package enum exhaustively enumerates strategy profiles of tiny games
// and classifies their equilibria: classical Nash equilibria (NE, full
// knowledge) and Local Knowledge Equilibria (LKE, radius k). It exists to
// machine-check the paper's structural claims on concrete instances —
// "as the set of LKEs is broader than the set of NEs, the PoA in our
// model can only be worse" (§1) — and to validate the PoA machinery
// end-to-end against ground truth.
//
// The profile space is (2^(n-1))^n, so n <= 4 is instant and n = 5 is
// the practical ceiling.
package enum

import (
	"fmt"
	"math"

	"repro/internal/bestresponse"
	"repro/internal/game"
)

// Profile is one strategy profile: Strategies[u] is σ_u as a bitmask over
// players (bit v set ⇔ u buys the edge towards v).
type Profile struct {
	N          int
	Strategies []uint32
}

// Apply materializes the profile as a game state.
func (p Profile) Apply() *game.State {
	s := game.NewState(p.N)
	for u := 0; u < p.N; u++ {
		for v := 0; v < p.N; v++ {
			if v != u && p.Strategies[u]&(1<<v) != 0 {
				s.Buy(u, v)
			}
		}
	}
	return s
}

// Result is the outcome of an enumeration.
type Result struct {
	Variant game.Variant
	Alpha   float64
	K       int
	// Profiles is the total number of profiles visited.
	Profiles int
	// NE / LKE hold the equilibrium profiles found (NE ⊆ LKE must hold).
	NE  []Profile
	LKE []Profile
	// OptCost is the minimum social cost over all profiles (the true
	// social optimum, not the star/clique approximation).
	OptCost float64
	// WorstNECost / WorstLKECost are the costliest equilibrium social
	// costs (math.Inf(-1) when no equilibrium exists).
	WorstNECost  float64
	WorstLKECost float64
}

// PoANE returns the exact full-knowledge Price of Anarchy.
func (r Result) PoANE() float64 { return r.WorstNECost / r.OptCost }

// PoALKE returns the exact local-knowledge Price of Anarchy.
func (r Result) PoALKE() float64 { return r.WorstLKECost / r.OptCost }

// Enumerate visits every strategy profile of an n-player game and
// classifies equilibria. Only connected profiles are considered for the
// social optimum and equilibria (disconnected ones have unbounded cost
// and are never stable for the players cut off).
func Enumerate(n int, variant game.Variant, alpha float64, k int) (Result, error) {
	if n < 2 || n > 5 {
		return Result{}, fmt.Errorf("enum: n=%d out of range [2,5]", n)
	}
	res := Result{
		Variant:      variant,
		Alpha:        alpha,
		K:            k,
		OptCost:      math.Inf(1),
		WorstNECost:  math.Inf(-1),
		WorstLKECost: math.Inf(-1),
	}
	strategies := make([]uint32, n)
	var visit func(u int)
	visit = func(u int) {
		if u == n {
			res.Profiles++
			p := Profile{N: n, Strategies: append([]uint32(nil), strategies...)}
			classify(&res, p)
			return
		}
		// All subsets of V \ {u}.
		full := uint32(1<<n) - 1
		mask := full &^ (1 << u)
		for sub := mask; ; sub = (sub - 1) & mask {
			strategies[u] = sub
			visit(u + 1)
			if sub == 0 {
				break
			}
		}
	}
	visit(0)
	return res, nil
}

func classify(res *Result, p Profile) {
	s := p.Apply()
	if !s.Graph().IsConnected() {
		return
	}
	sc := game.SocialCost(s, res.Variant, res.Alpha)
	if sc < res.OptCost {
		res.OptCost = sc
	}
	if isNE(s, res.Variant, res.Alpha) {
		res.NE = append(res.NE, p)
		if sc > res.WorstNECost {
			res.WorstNECost = sc
		}
	}
	if isLKE(s, res.Variant, res.Alpha, res.K) {
		res.LKE = append(res.LKE, p)
		if sc > res.WorstLKECost {
			res.WorstLKECost = sc
		}
	}
}

// isNE checks classical Nash stability by exhaustive deviation: every
// alternative strategy of every player, evaluated on the full network.
func isNE(s *game.State, variant game.Variant, alpha float64) bool {
	n := s.N()
	for u := 0; u < n; u++ {
		cur := game.PlayerCost(s, variant, alpha, u)
		mask := (uint32(1) << n) - 1
		mask &^= 1 << u
		for sub := mask; ; sub = (sub - 1) & mask {
			var alt []int
			for v := 0; v < n; v++ {
				if v != u && sub&(1<<v) != 0 {
					alt = append(alt, v)
				}
			}
			trial := s.Clone()
			trial.SetStrategy(u, alt)
			if game.PlayerCost(trial, variant, alpha, u) < cur-1e-9 {
				return false
			}
			if sub == 0 {
				break
			}
		}
	}
	return true
}

// isLKE checks local-knowledge stability with the paper's worst-case
// rules: the exact MDS-based responder for MAXNCG (Prop. 2.1) and the
// exhaustive Δ-search for SUMNCG (Prop. 2.2).
func isLKE(s *game.State, variant game.Variant, alpha float64, k int) bool {
	for u := 0; u < s.N(); u++ {
		switch variant {
		case game.Max:
			if bestresponse.MaxBestResponse(s, u, k, alpha).Improving {
				return false
			}
		case game.Sum:
			r := bestresponse.SumBestResponseExhaustive(s, u, k, alpha, 8)
			if r.Feasible && r.Improving {
				return false
			}
		}
	}
	return true
}

// ContainsProfile reports whether list contains a profile with identical
// strategies.
func ContainsProfile(list []Profile, p Profile) bool {
	for _, q := range list {
		if q.N != p.N {
			continue
		}
		same := true
		for i := range q.Strategies {
			if q.Strategies[i] != p.Strategies[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
