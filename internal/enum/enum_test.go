package enum

import (
	"testing"

	"repro/internal/game"
)

func TestEnumerateRejectsBadN(t *testing.T) {
	if _, err := Enumerate(1, game.Max, 1, 2); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Enumerate(6, game.Max, 1, 2); err == nil {
		t.Fatal("n=6 accepted")
	}
}

func TestEnumerateTwoPlayers(t *testing.T) {
	// n=2: profiles are subsets of one edge per player. Connected
	// profiles: at least one buys the edge. At α=2, MAX costs:
	// buyer pays α+1, the other 1. NE: exactly-one-buyer profiles
	// (dropping your only edge disconnects you; buying the second copy
	// wastes α). Both such profiles are NE and LKE at any k >= 1.
	res, err := Enumerate(2, game.Max, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profiles != 4 {
		t.Fatalf("profiles=%d, want 4", res.Profiles)
	}
	if len(res.NE) != 2 {
		t.Fatalf("NE count=%d, want 2", len(res.NE))
	}
	if len(res.LKE) != 2 {
		t.Fatalf("LKE count=%d, want 2", len(res.LKE))
	}
	if res.OptCost != 2+2 { // α·1 + ecc 1 + ecc 1
		t.Fatalf("opt=%v, want 4", res.OptCost)
	}
	if res.PoANE() != 1 || res.PoALKE() != 1 {
		t.Fatalf("PoA: NE=%v LKE=%v, want 1", res.PoANE(), res.PoALKE())
	}
}

func TestNESubsetOfLKEMax(t *testing.T) {
	// The paper's §1 claim, machine-checked: every NE is an LKE (the
	// local worst-case rule only removes deviation options).
	for _, alpha := range []float64{0.5, 1.5, 3} {
		for _, k := range []int{1, 2, 3} {
			res, err := Enumerate(3, game.Max, alpha, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, ne := range res.NE {
				if !ContainsProfile(res.LKE, ne) {
					t.Fatalf("α=%v k=%d: NE %v missing from LKE set", alpha, k, ne)
				}
			}
			if res.PoALKE() < res.PoANE()-1e-9 {
				t.Fatalf("α=%v k=%d: PoA(LKE)=%v < PoA(NE)=%v", alpha, k,
					res.PoALKE(), res.PoANE())
			}
		}
	}
}

func TestNESubsetOfLKESum(t *testing.T) {
	for _, alpha := range []float64{1.5, 3} {
		res, err := Enumerate(3, game.Sum, alpha, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, ne := range res.NE {
			if !ContainsProfile(res.LKE, ne) {
				t.Fatalf("α=%v: SUM NE %v missing from LKE set", alpha, ne)
			}
		}
		if res.PoALKE() < res.PoANE()-1e-9 {
			t.Fatalf("α=%v: PoA(LKE) < PoA(NE)", alpha)
		}
	}
}

func TestEnumerateFourPlayers(t *testing.T) {
	res, err := Enumerate(4, game.Max, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profiles != 8*8*8*8 {
		t.Fatalf("profiles=%d, want 4096", res.Profiles)
	}
	if len(res.NE) == 0 || len(res.LKE) == 0 {
		t.Fatal("no equilibria found at n=4, α=2")
	}
	for _, ne := range res.NE {
		if !ContainsProfile(res.LKE, ne) {
			t.Fatal("NE ⊄ LKE at n=4")
		}
	}
	// The social optimum at α=2 is a spanning-tree-like profile; it must
	// match the closed-form star bound.
	if want := game.StarSocialCost(4, game.Max, 2); res.OptCost > want+1e-9 {
		t.Fatalf("opt=%v above star cost %v", res.OptCost, want)
	}
}

func TestProfileApplyRoundTrip(t *testing.T) {
	p := Profile{N: 3, Strategies: []uint32{0b010, 0b100, 0b000}}
	s := p.Apply()
	if !s.Buys(0, 1) || !s.Buys(1, 2) || s.BoughtCount(2) != 0 {
		t.Fatalf("apply: %v", s)
	}
	if s.Graph().M() != 2 {
		t.Fatalf("edges=%d", s.Graph().M())
	}
}

func TestContainsProfile(t *testing.T) {
	a := Profile{N: 2, Strategies: []uint32{0b10, 0}}
	b := Profile{N: 2, Strategies: []uint32{0, 0b01}}
	list := []Profile{a}
	if !ContainsProfile(list, a) {
		t.Fatal("missing identical profile")
	}
	if ContainsProfile(list, b) {
		t.Fatal("found different profile")
	}
}

func TestSmallKWidensLKESet(t *testing.T) {
	// Restricting the view can only ADD equilibria (fewer visible
	// deviations). Compare LKE counts at k=1 vs k=3 on n=3.
	small, err := Enumerate(3, game.Max, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Enumerate(3, game.Max, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.LKE) < len(large.LKE) {
		t.Fatalf("k=1 has %d LKEs, k=3 has %d — locality should not remove equilibria",
			len(small.LKE), len(large.LKE))
	}
	for _, lke := range large.LKE {
		if !ContainsProfile(small.LKE, lke) {
			t.Fatal("an LKE at k=3 vanished at k=1")
		}
	}
}
