package graph

import (
	"strings"
	"testing"
)

func TestSortedNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.SortedNeighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Returned slice is a copy: mutating it must not corrupt the graph.
	got[0] = 99
	if !g.HasEdge(2, 0) {
		t.Fatal("mutation leaked")
	}
}

func TestStringer(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if s := g.String(); !strings.Contains(s, "n=3") || !strings.Contains(s, "m=1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestComplementSize(t *testing.T) {
	g := New(5)
	if g.ComplementSize() != 10 {
		t.Fatalf("empty complement = %d", g.ComplementSize())
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.ComplementSize() != 8 {
		t.Fatalf("complement = %d", g.ComplementSize())
	}
	k := complete(5)
	if k.ComplementSize() != 0 {
		t.Fatalf("K5 complement = %d", k.ComplementSize())
	}
}

func TestBallDisconnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	ball := g.Ball(0, 10)
	if len(ball) != 2 {
		t.Fatalf("ball across components: %v", ball)
	}
}

func TestGirthTwoVertexCycleImpossible(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if g.Girth() != Unreachable {
		t.Fatal("single edge has a cycle?")
	}
}

func TestEccentricityIsolated(t *testing.T) {
	g := New(3)
	if g.Eccentricity(0) < Unreachable {
		t.Fatal("isolated vertex has finite eccentricity")
	}
	if g.SumDistances(0) < Unreachable {
		t.Fatal("isolated vertex has finite status")
	}
}
