package graph

import (
	"runtime"
	"sync"
)

// Unreachable is the distance reported for vertices in a different connected
// component. It is large enough to dominate any real distance but small
// enough that modest sums do not overflow int.
const Unreachable = int(1) << 40

// BFS computes single-source shortest-path distances from src into dist,
// which must have length g.N(). Unreachable vertices get Unreachable.
// The provided queue buffer is reused when non-nil and large enough;
// callers running many BFS passes should allocate both once.
func (g *Graph) BFS(src int, dist []int, queue []int32) {
	g.check(src)
	if len(dist) != g.n {
		panic("graph: BFS dist buffer has wrong length")
	}
	if cap(queue) < g.n {
		queue = make([]int32, g.n)
	}
	queue = queue[:g.n]
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := int(queue[head])
		head++
		du := dist[u]
		for _, w := range g.adj[u] {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue[tail] = w
				tail++
			}
		}
	}
}

// Distances returns a fresh slice of distances from src.
func (g *Graph) Distances(src int) []int {
	dist := make([]int, g.n)
	g.BFS(src, dist, nil)
	return dist
}

// Dist returns the distance between u and v (Unreachable when
// disconnected). The BFS stops as soon as v is reached and runs on pooled
// scratch buffers, so point queries allocate nothing and never pay for
// the far side of the graph.
func (g *Graph) Dist(u, v int) int {
	g.check(u)
	g.check(v)
	s := GetScratch(g.n)
	d := g.bfsTarget(u, v, s)
	PutScratch(s)
	return d
}

// BFSWithin computes distances from src, exploring only vertices at distance
// at most k. dist must have length g.N(); vertices beyond radius k (or
// unreachable) get Unreachable. It returns the visited vertices in BFS order.
func (g *Graph) BFSWithin(src, k int, dist []int, queue []int32) []int32 {
	g.check(src)
	if len(dist) != g.n {
		panic("graph: BFSWithin dist buffer has wrong length")
	}
	if k < 0 {
		panic("graph: negative radius")
	}
	if cap(queue) < g.n {
		queue = make([]int32, g.n)
	}
	queue = queue[:g.n]
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := int(queue[head])
		head++
		du := dist[u]
		if du == k {
			continue
		}
		for _, w := range g.adj[u] {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue[tail] = w
				tail++
			}
		}
	}
	return queue[:tail]
}

// Ball returns the vertices at distance at most k from src, in BFS order.
func (g *Graph) Ball(src, k int) []int {
	dist := make([]int, g.n)
	visited := g.BFSWithin(src, k, dist, nil)
	out := make([]int, len(visited))
	for i, v := range visited {
		out[i] = int(v)
	}
	return out
}

// Eccentricity returns the eccentricity of v, or Unreachable when the graph
// is disconnected from v's component. Runs on pooled scratch buffers.
func (g *Graph) Eccentricity(v int) int {
	g.check(v)
	s := GetScratch(g.n)
	visited := g.bfsScratch(v, s)
	ecc := 0
	if len(visited) < g.n {
		ecc = Unreachable
	} else {
		for _, u := range visited {
			if d := int(s.dist[u]); d > ecc {
				ecc = d
			}
		}
	}
	PutScratch(s)
	return ecc
}

// SumDistances returns the status of v: the sum of distances from v to every
// other vertex. If any vertex is unreachable the result is >= Unreachable
// (each missing vertex contributes exactly Unreachable). Runs on pooled
// scratch buffers.
func (g *Graph) SumDistances(v int) int {
	g.check(v)
	s := GetScratch(g.n)
	visited := g.bfsScratch(v, s)
	sum := 0
	for _, u := range visited {
		sum += int(s.dist[u])
	}
	sum += (g.n - len(visited)) * Unreachable
	PutScratch(s)
	return sum
}

// AllEccentricities computes the eccentricity of every vertex with a
// parallel fan-out of BFS workers over one flat CSR snapshot. The result
// index is the vertex id.
func (g *Graph) AllEccentricities() []int {
	return g.CSR().AllEccentricitiesInto(nil)
}

// AllSumDistances computes the status (sum of distances) of every vertex in
// parallel over one flat CSR snapshot. The result index is the vertex id.
func (g *Graph) AllSumDistances() []int {
	return g.CSR().AllSumDistancesInto(nil)
}

// AllEccentricitiesInto is AllEccentricities over an existing snapshot,
// reusing dst when it is large enough — the allocation-free form for
// callers (per-round statistics collection) that recompute every round.
func (c *CSR) AllEccentricitiesInto(dst []int) []int {
	if cap(dst) < c.n {
		dst = make([]int, c.n)
	}
	dst = dst[:c.n]
	parallelVertices(c.n, func(v int, s *Scratch) {
		dst[v] = c.Eccentricity(v, s)
	})
	return dst
}

// AllSumDistancesInto is AllSumDistances over an existing snapshot,
// reusing dst when it is large enough.
func (c *CSR) AllSumDistancesInto(dst []int) []int {
	if cap(dst) < c.n {
		dst = make([]int, c.n)
	}
	dst = dst[:c.n]
	parallelVertices(c.n, func(v int, s *Scratch) {
		dst[v] = c.SumDistances(v, s)
	})
	return dst
}

// parallelVertices runs fn(v, scratch) for every vertex v using a fixed
// pool of GOMAXPROCS workers, each owning one reusable Scratch. Writes by
// different vertices must target disjoint memory.
func parallelVertices(n int, fn func(v int, s *Scratch)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := GetScratch(n)
		for v := 0; v < n; v++ {
			fn(v, s)
		}
		PutScratch(s)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := GetScratch(n)
			// Strided assignment keeps the schedule deterministic and
			// avoids a shared work channel for this embarrassingly
			// parallel loop.
			for v := w; v < n; v += workers {
				fn(v, s)
			}
			PutScratch(s)
		}(w)
	}
	wg.Wait()
}
