package graph

// Induced returns the subgraph of g induced by the given vertices, together
// with the mapping from new vertex ids (0..len(vertices)-1) back to the
// original ids. Duplicate vertices in the input panic.
func (g *Graph) Induced(vertices []int) (*Graph, []int) {
	index := make(map[int]int, len(vertices))
	orig := make([]int, len(vertices))
	for i, v := range vertices {
		g.check(v)
		if _, dup := index[v]; dup {
			panic("graph: duplicate vertex in induced subgraph")
		}
		index[v] = i
		orig[i] = v
	}
	h := New(len(vertices))
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			if j, ok := index[int(w)]; ok && j > i {
				h.AddEdge(i, j)
			}
		}
	}
	return h, orig
}

// Power returns the h-th power of g: a graph on the same vertex set where
// (u,v) is an edge iff 0 < d_g(u,v) <= h. Power(0) is the empty graph and
// Power(1) equals g.
func (g *Graph) Power(h int) *Graph {
	if h < 0 {
		panic("graph: negative power")
	}
	p := New(g.n)
	if h == 0 {
		return p
	}
	dist := make([]int, g.n)
	queue := make([]int32, g.n)
	for u := 0; u < g.n; u++ {
		g.BFSWithin(u, h, dist, queue)
		for v := u + 1; v < g.n; v++ {
			if dist[v] <= h {
				p.AddEdge(u, v)
			}
		}
	}
	return p
}

// ComplementSize returns the number of vertex pairs that are NOT edges.
func (g *Graph) ComplementSize() int {
	return g.n*(g.n-1)/2 - g.m
}
