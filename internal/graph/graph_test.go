package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d has degree %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasic(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) returned false on first insert")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) returned true on duplicate insert")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("AddEdge(1,0) returned true on reversed duplicate")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("AddEdge allowed a self-loop")
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge reports absent edge")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) failed on present edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge succeeded on absent edge")
	}
	if g.M() != 1 || g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("unexpected state after removal: m=%d", g.M())
	}
	if g.RemoveEdge(3, 3) {
		t.Fatal("RemoveEdge succeeded on self-loop")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(3)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 3) },
		func() { g.AddEdge(-1, 0) },
		func() { g.HasEdge(0, 5) },
		func() { g.Degree(3) },
		func() { g.Neighbors(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	g.RemoveEdge(0, 1)
	if !c.HasEdge(0, 1) {
		t.Fatal("mutating original affected clone")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(2, 0)
	edges := g.Edges()
	want := []Edge{{0, 2}, {0, 4}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestEqual(t *testing.T) {
	a := New(3)
	b := New(3)
	a.AddEdge(0, 1)
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Fatal("equal graphs reported unequal")
	}
	b.AddEdge(1, 2)
	if a.Equal(b) {
		t.Fatal("unequal edge counts reported equal")
	}
	a.AddEdge(0, 2)
	if a.Equal(b) {
		t.Fatal("different edge sets reported equal")
	}
	if a.Equal(New(4)) {
		t.Fatal("different vertex counts reported equal")
	}
}

// path builds a path v0-v1-...-v_{n-1}.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycle builds a cycle on n >= 3 vertices.
func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

// star builds a star with center 0.
func star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// complete builds K_n.
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// randomConnected returns a connected random graph: a random spanning tree
// plus extra random edges.
func randomConnected(n int, extra int, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for e := 0; e < extra; e++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestBFSPath(t *testing.T) {
	g := path(6)
	dist := g.Distances(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.Distances(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("unreachable vertices got finite distances: %v", dist)
	}
	if dist[1] != 1 || dist[0] != 0 {
		t.Fatalf("wrong distances in reachable component: %v", dist)
	}
}

func TestBFSBufferReuse(t *testing.T) {
	g := cycle(8)
	dist := make([]int, 8)
	queue := make([]int32, 8)
	g.BFS(0, dist, queue)
	if dist[4] != 4 {
		t.Fatalf("dist[4] = %d, want 4", dist[4])
	}
	g.BFS(4, dist, queue)
	if dist[0] != 4 || dist[4] != 0 {
		t.Fatalf("buffer reuse produced stale distances: %v", dist)
	}
}

func TestBFSWrongBufferPanics(t *testing.T) {
	g := path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("BFS with short dist buffer did not panic")
		}
	}()
	g.BFS(0, make([]int, 2), nil)
}

func TestBFSWithin(t *testing.T) {
	g := path(10)
	dist := make([]int, 10)
	visited := g.BFSWithin(3, 2, dist, nil)
	if len(visited) != 5 { // vertices 1..5
		t.Fatalf("visited %d vertices, want 5", len(visited))
	}
	for v := 0; v < 10; v++ {
		want := v - 3
		if want < 0 {
			want = -want
		}
		if want <= 2 {
			if dist[v] != want {
				t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
			}
		} else if dist[v] != Unreachable {
			t.Errorf("dist[%d] = %d, want Unreachable", v, dist[v])
		}
	}
}

func TestBFSWithinZero(t *testing.T) {
	g := complete(5)
	ball := g.Ball(2, 0)
	if len(ball) != 1 || ball[0] != 2 {
		t.Fatalf("Ball(2,0) = %v, want [2]", ball)
	}
}

func TestBallOrderAndContents(t *testing.T) {
	g := star(6)
	ball := g.Ball(0, 1)
	if len(ball) != 6 {
		t.Fatalf("star center ball size = %d, want 6", len(ball))
	}
	if ball[0] != 0 {
		t.Fatal("ball does not start at the source")
	}
	leafBall := g.Ball(1, 1)
	if len(leafBall) != 2 {
		t.Fatalf("leaf radius-1 ball size = %d, want 2", len(leafBall))
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	cases := []struct {
		name         string
		g            *Graph
		diam, radius int
	}{
		{"path6", path(6), 5, 3},
		{"cycle8", cycle(8), 4, 4},
		{"star7", star(7), 2, 1},
		{"K5", complete(5), 1, 1},
		{"single", New(1), 0, 0},
	}
	for _, c := range cases {
		if d := c.g.Diameter(); d != c.diam {
			t.Errorf("%s: diameter = %d, want %d", c.name, d, c.diam)
		}
		if r := c.g.Radius(); r != c.radius {
			t.Errorf("%s: radius = %d, want %d", c.name, r, c.radius)
		}
	}
}

func TestDisconnectedDiameter(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Diameter() != Unreachable {
		t.Fatal("disconnected diameter should be Unreachable")
	}
	if g.Radius() != Unreachable {
		t.Fatal("disconnected radius should be Unreachable")
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 || len(comps[3]) != 1 {
		t.Fatalf("unexpected component sizes: %v", comps)
	}
}

func TestAllEccentricitiesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(30, 15, rng)
		all := g.AllEccentricities()
		for v := 0; v < g.N(); v++ {
			if want := g.Eccentricity(v); all[v] != want {
				t.Fatalf("trial %d: AllEccentricities[%d] = %d, want %d", trial, v, all[v], want)
			}
		}
	}
}

func TestAllSumDistancesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(25, 10, rng)
		all := g.AllSumDistances()
		for v := 0; v < g.N(); v++ {
			if want := g.SumDistances(v); all[v] != want {
				t.Fatalf("trial %d: AllSumDistances[%d] = %d, want %d", trial, v, all[v], want)
			}
		}
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		name  string
		g     *Graph
		girth int
	}{
		{"tree", path(8), Unreachable},
		{"C3", cycle(3), 3},
		{"C5", cycle(5), 5},
		{"C10", cycle(10), 10},
		{"K4", complete(4), 3},
		{"K5", complete(5), 3},
	}
	for _, c := range cases {
		if got := c.g.Girth(); got != c.girth {
			t.Errorf("%s: girth = %d, want %d", c.name, got, c.girth)
		}
	}
}

func TestGirthPetersen(t *testing.T) {
	// The Petersen graph: 3-regular, girth 5.
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer C5
		g.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.AddEdge(i, 5+i)         // spokes
	}
	if got := g.Girth(); got != 5 {
		t.Fatalf("Petersen girth = %d, want 5", got)
	}
}

func TestGirthChordedCycle(t *testing.T) {
	g := cycle(9)
	g.AddEdge(0, 4) // creates a 5-cycle and a 6-cycle
	if got := g.Girth(); got != 5 {
		t.Fatalf("girth = %d, want 5", got)
	}
}

func TestInduced(t *testing.T) {
	g := cycle(6)
	h, orig := g.Induced([]int{0, 1, 2, 4})
	if h.N() != 4 {
		t.Fatalf("induced N = %d, want 4", h.N())
	}
	if h.M() != 2 { // edges (0,1),(1,2); vertex 4 isolated
		t.Fatalf("induced M = %d, want 2", h.M())
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) {
		t.Fatal("induced subgraph missing expected edges")
	}
	for i, v := range []int{0, 1, 2, 4} {
		if orig[i] != v {
			t.Errorf("orig[%d] = %d, want %d", i, orig[i], v)
		}
	}
}

func TestInducedDuplicatePanics(t *testing.T) {
	g := path(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Induced with duplicate vertices did not panic")
		}
	}()
	g.Induced([]int{0, 1, 1})
}

func TestPower(t *testing.T) {
	g := path(5)
	p2 := g.Power(2)
	wantEdges := []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}
	got := p2.Edges()
	if len(got) != len(wantEdges) {
		t.Fatalf("P2 edges = %v, want %v", got, wantEdges)
	}
	for i := range wantEdges {
		if got[i] != wantEdges[i] {
			t.Fatalf("P2 edges = %v, want %v", got, wantEdges)
		}
	}
	if !g.Power(1).Equal(g) {
		t.Fatal("Power(1) != g")
	}
	if g.Power(0).M() != 0 {
		t.Fatal("Power(0) is not empty")
	}
	if p := g.Power(10); p.M() != 5*4/2 {
		t.Fatalf("large power not complete: m=%d", p.M())
	}
}

func TestMaxAndAverageDegree(t *testing.T) {
	g := star(5)
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	if got, want := g.AverageDegree(), 2*4.0/5.0; got != want {
		t.Fatalf("AverageDegree = %v, want %v", got, want)
	}
	if New(0).AverageDegree() != 0 {
		t.Fatal("empty graph average degree not 0")
	}
}

// --- property-based tests (testing/quick) ---

// qcGraph derives a deterministic random connected graph from seed material.
func qcGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return randomConnected(n, rng.Intn(2*n), rng)
}

func TestQuickDistanceSymmetry(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		n := 3 + int(a%20)
		g := qcGraph(seed, n)
		u, v := int(a)%n, int(b)%n
		return g.Dist(u, v) == g.Dist(v, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64, a, b, c uint8) bool {
		n := 3 + int(a%15)
		g := qcGraph(seed, n)
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		return g.Dist(x, z) <= g.Dist(x, y)+g.Dist(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBallNesting(t *testing.T) {
	f := func(seed int64, a, r uint8) bool {
		n := 3 + int(a%15)
		g := qcGraph(seed, n)
		src := int(a) % n
		k := int(r % 5)
		inner := g.Ball(src, k)
		outer := g.Ball(src, k+1)
		in := make(map[int]bool, len(outer))
		for _, v := range outer {
			in[v] = true
		}
		for _, v := range inner {
			if !in[v] {
				return false
			}
		}
		return len(inner) <= len(outer)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPowerMonotone(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		n := 3 + int(a%10)
		g := qcGraph(seed, n)
		p1 := g.Power(1)
		p2 := g.Power(2)
		for _, e := range p1.Edges() {
			if !p2.HasEdge(e.U, e.V) {
				return false
			}
		}
		// Power-2 edges must have distance <= 2 in g.
		for _, e := range p2.Edges() {
			if g.Dist(e.U, e.V) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddRemoveInverse(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		n := 3 + int(a%15)
		g := qcGraph(seed, n)
		u, v := int(a)%n, int(b)%n
		if u == v {
			return true
		}
		had := g.HasEdge(u, v)
		before := g.Clone()
		if had {
			g.RemoveEdge(u, v)
			g.AddEdge(u, v)
		} else {
			g.AddEdge(u, v)
			g.RemoveEdge(u, v)
		}
		return g.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEccentricityBounds(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		n := 3 + int(a%15)
		g := qcGraph(seed, n)
		diam := g.Diameter()
		rad := g.Radius()
		// radius <= diameter <= 2*radius for connected graphs.
		return rad <= diam && diam <= 2*rad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
