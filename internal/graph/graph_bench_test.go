package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, extra int) *Graph {
	rng := rand.New(rand.NewSource(1))
	return randomConnected(n, extra, rng)
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(1000, 2000)
	dist := make([]int, g.N())
	queue := make([]int32, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i%g.N(), dist, queue)
	}
}

func BenchmarkBFSWithin(b *testing.B) {
	g := benchGraph(1000, 2000)
	dist := make([]int, g.N())
	queue := make([]int32, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSWithin(i%g.N(), 3, dist, queue)
	}
}

// BenchmarkAllEccentricitiesParallel vs ...Serial is the ablation for the
// parallel BFS fan-out (DESIGN.md: "parallel all-pairs BFS").
func BenchmarkAllEccentricitiesParallel(b *testing.B) {
	g := benchGraph(500, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllEccentricities()
	}
}

func BenchmarkAllEccentricitiesSerial(b *testing.B) {
	g := benchGraph(500, 1000)
	dist := make([]int, g.N())
	queue := make([]int32, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			g.BFS(v, dist, queue)
			e := 0
			for _, d := range dist {
				if d > e {
					e = d
				}
			}
			_ = e
		}
	}
}

func BenchmarkGirth(b *testing.B) {
	g := benchGraph(300, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Girth()
	}
}

func BenchmarkPower2(b *testing.B) {
	g := benchGraph(300, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Power(2)
	}
}

func BenchmarkAddRemoveEdge(b *testing.B) {
	g := benchGraph(1000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := i%999, (i%999)+1
		if g.AddEdge(u, v) {
			g.RemoveEdge(u, v)
		}
	}
}
