package graph

import "sync"

// Scratch holds the reusable buffers of a BFS: an epoch-stamped visited
// array (so a fresh traversal never pays an O(n) clear), int32 distances,
// and the queue. A Scratch is not safe for concurrent use; give each
// worker its own, or borrow one from the package pool with GetScratch.
//
// Distances are only meaningful for vertices visited by the most recent
// traversal; Dist converts unvisited vertices to Unreachable, matching
// the full-slice BFS convention.
type Scratch struct {
	epoch uint32
	seen  []uint32
	dist  []int32
	queue []int32
}

// NewScratch returns a Scratch sized for graphs of up to n vertices. It
// grows on demand, so n is a hint, not a cap.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.grow(n)
	return s
}

// grow ensures capacity for n vertices. New seen entries start at zero,
// which is below any live epoch.
func (s *Scratch) grow(n int) {
	if n <= len(s.seen) {
		return
	}
	s.seen = append(make([]uint32, 0, n), s.seen...)[:n]
	s.dist = make([]int32, n)
	s.queue = make([]int32, n)
}

// begin starts a fresh traversal over n vertices: everything unvisited,
// nothing enqueued. Epoch wraparound (once per 2^32 traversals) forces a
// one-time clear so stale stamps can never alias a live epoch.
func (s *Scratch) begin(n int) {
	s.grow(n)
	s.epoch++
	if s.epoch == 0 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.epoch = 1
	}
}

// visit stamps v with distance d and returns true when v was unvisited.
func (s *Scratch) visit(v int32, d int32) bool {
	if s.seen[v] == s.epoch {
		return false
	}
	s.seen[v] = s.epoch
	s.dist[v] = d
	return true
}

// Dist returns the distance recorded for v by the most recent traversal,
// or Unreachable when v was not visited.
func (s *Scratch) Dist(v int) int {
	if s.seen[v] != s.epoch {
		return Unreachable
	}
	return int(s.dist[v])
}

// scratchPool recycles Scratches for the package-level conveniences
// (Graph.Dist, Eccentricity, ...) so one-shot queries stay allocation-free
// after warm-up.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch sized for n vertices from the shared pool.
// Return it with PutScratch when done.
func GetScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.grow(n)
	return s
}

// PutScratch returns a Scratch to the shared pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// bfsScratch runs a full BFS from src over the adjacency lists, returning
// the visited vertices in BFS order (a prefix of the scratch queue, valid
// until the next traversal).
func (g *Graph) bfsScratch(src int, s *Scratch) []int32 {
	s.begin(g.n)
	s.visit(int32(src), 0)
	s.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		for _, w := range g.adj[u] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}

// bfsTarget runs a BFS from src that stops as soon as target is reached,
// returning the distance (Unreachable when disconnected).
func (g *Graph) bfsTarget(src, target int, s *Scratch) int {
	if src == target {
		return 0
	}
	s.begin(g.n)
	s.visit(int32(src), 0)
	s.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		for _, w := range g.adj[u] {
			if s.visit(w, du+1) {
				if int(w) == target {
					return int(du + 1)
				}
				s.queue[tail] = w
				tail++
			}
		}
	}
	return Unreachable
}

// BFSWithinScratch is BFSWithin on reusable scratch buffers: it explores
// only vertices at distance at most k from src and returns them in BFS
// order (aliasing the scratch queue, valid until the next traversal).
// Distances are readable through s.Dist.
func (g *Graph) BFSWithinScratch(src, k int, s *Scratch) []int32 {
	g.check(src)
	if k < 0 {
		panic("graph: negative radius")
	}
	s.begin(g.n)
	s.visit(int32(src), 0)
	s.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, w := range g.adj[u] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}
