// Package graph provides the undirected-graph substrate used by every other
// package in this repository: adjacency storage, BFS kernels, distance
// metrics (eccentricity, diameter, radius, girth), graph powers, induced
// subgraphs, and connectivity queries.
//
// Vertices are dense integers in [0, N). Graphs are mutable — the
// best-response dynamics rewires edges on every improving move — so the
// representation favors cheap edge insertion/removal on small-degree
// vertices over asymptotic cleverness. All query methods are read-only and
// safe for concurrent use as long as no writer is active.
//
// Two companion types serve the hot paths. CSR is an immutable flat
// snapshot (packed int32 offset/target arrays, adjacency order preserved)
// for traversal-heavy read workloads: build it once, then fan BFS out
// across workers. Scratch is the reusable buffer set those kernels run on
// — an epoch-stamped visited array plus int32 distance/queue buffers — so
// a traversal neither allocates nor pays an O(n) clear. The one-shot
// conveniences (Dist, Eccentricity, SumDistances, ...) borrow a Scratch
// from an internal pool, making them allocation-free after warm-up while
// keeping their original signatures and results.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1, stored as
// adjacency lists. Self-loops and parallel edges are rejected.
type Graph struct {
	n   int
	m   int
	adj [][]int32
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// check panics when v is out of range.
func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	// Scan the smaller list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u,v). It returns false when the edge
// already exists or u == v, and true when the edge was inserted.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge (u,v). It returns false when the
// edge was not present.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if !g.removeArc(u, v) {
		return false
	}
	g.removeArc(v, u)
	g.m--
	return true
}

func (g *Graph) removeArc(u, v int) bool {
	l := g.adj[u]
	for i, w := range l {
		if int(w) == v {
			l[i] = l[len(l)-1]
			g.adj[u] = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the adjacency list of v. The returned slice aliases the
// graph's internal storage and must not be modified; its order is
// unspecified.
func (g *Graph) Neighbors(v int) []int32 {
	g.check(v)
	return g.adj[v]
}

// SortedNeighbors returns a fresh, sorted copy of v's adjacency list.
func (g *Graph) SortedNeighbors(v int) []int {
	g.check(v)
	out := make([]int, len(g.adj[v]))
	for i, w := range g.adj[v] {
		out[i] = int(w)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, m: g.m, adj: make([][]int32, g.n)}
	for v, l := range g.adj {
		if len(l) > 0 {
			c.adj[v] = append([]int32(nil), l...)
		}
	}
	return c
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// Edges returns all edges with U < V, sorted lexicographically. The outer
// loop already emits edges grouped by ascending U, so only each vertex's
// span needs sorting (by V) — not the whole slice.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		start := len(out)
		for _, w := range g.adj[u] {
			if int(w) > u {
				out = append(out, Edge{u, int(w)})
			}
		}
		span := out[start:]
		sort.Slice(span, func(i, j int) bool { return span[i].V < span[j].V })
	}
	return out
}

// Equal reports whether g and h have identical vertex and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for _, w := range g.adj[u] {
			if !h.HasEdge(u, int(w)) {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, e.g. "Graph(n=5, m=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.m)
}
