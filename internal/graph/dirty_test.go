package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random graph for property tests.
func randomDirtyGraph(n int, extra int, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < extra; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// TestMultiBFSWithinMatchesUnion checks the multi-source kernel against
// the union of per-source bounded BFS runs: same visited set, and each
// distance is the minimum over sources.
func TestMultiBFSWithinMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDirtyGraph(n, rng.Intn(2*n), rng)
		k := rng.Intn(5)
		nsrc := 1 + rng.Intn(4)
		srcs := make([]int32, nsrc)
		for i := range srcs {
			srcs[i] = int32(rng.Intn(n))
		}
		// Reference: per-source bounded BFS, min distance per vertex.
		want := make(map[int32]int)
		dist := make([]int, n)
		for _, src := range srcs {
			for _, v := range g.BFSWithin(int(src), k, dist, nil) {
				if d, ok := want[v]; !ok || dist[v] < d {
					want[v] = dist[v]
				}
			}
		}
		s := NewScratch(n)
		got := g.MultiBFSWithinScratch(srcs, k, s)
		if len(got) != len(want) {
			t.Fatalf("trial %d: visited %d vertices, want %d", trial, len(got), len(want))
		}
		for _, v := range got {
			if d, ok := want[v]; !ok || s.Dist(int(v)) != d {
				t.Fatalf("trial %d: vertex %d dist=%d, want %d (present=%v)",
					trial, v, s.Dist(int(v)), d, ok)
			}
		}
		// The CSR form must agree vertex for vertex, in the same order.
		cs := NewScratch(n)
		cgot := g.CSR().MultiBFSWithin(srcs, k, cs)
		if len(cgot) != len(got) {
			t.Fatalf("trial %d: CSR visited %d, graph visited %d", trial, len(cgot), len(got))
		}
		for i := range got {
			if got[i] != cgot[i] || s.Dist(int(got[i])) != cs.Dist(int(cgot[i])) {
				t.Fatalf("trial %d: CSR order/dist diverges at %d", trial, i)
			}
		}
	}
}

func TestMultiBFSWithinEdgeCases(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	s := NewScratch(5)
	if got := g.MultiBFSWithinScratch(nil, 3, s); len(got) != 0 {
		t.Fatalf("empty source set visited %d vertices", len(got))
	}
	// Duplicate sources count once; radius 0 visits only the sources.
	got := g.MultiBFSWithinScratch([]int32{1, 1, 3}, 0, s)
	if len(got) != 2 {
		t.Fatalf("radius-0 dedup visited %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative radius did not panic")
		}
	}()
	g.MultiBFSWithinScratch([]int32{0}, -1, s)
}

// TestAllFanOutIntoMatchesFresh pins the Into variants to the allocating
// conveniences they back.
func TestAllFanOutIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomDirtyGraph(25, 10, rng)
	c := g.CSR()
	ecc := c.AllEccentricitiesInto(make([]int, 3)) // too small: must grow
	sums := c.AllSumDistancesInto(nil)
	wantEcc := g.AllEccentricities()
	wantSum := g.AllSumDistances()
	for v := 0; v < g.N(); v++ {
		if ecc[v] != wantEcc[v] || sums[v] != wantSum[v] {
			t.Fatalf("vertex %d: into (%d,%d) vs fresh (%d,%d)",
				v, ecc[v], sums[v], wantEcc[v], wantSum[v])
		}
	}
	// Reuse: a large-enough dst must be returned in place.
	buf := make([]int, g.N())
	if out := c.AllEccentricitiesInto(buf); &out[0] != &buf[0] {
		t.Fatal("AllEccentricitiesInto reallocated a sufficient buffer")
	}
}
