package graph

// MultiBFSWithinScratch runs a multi-source bounded breadth-first search:
// it explores exactly the vertices at distance at most k from ANY source
// and returns them in BFS order (aliasing the scratch queue, valid until
// the next traversal). Distances — the minimum over sources — are
// readable through s.Dist. Duplicate sources are tolerated; an empty
// source set yields an empty traversal.
//
// This is the dirty-set kernel of the event-driven dynamics engine: after
// a strategy change touches a set of arc endpoints, every player whose
// k-ball could have seen the change is within distance k of one of those
// endpoints (in the pre- or post-move graph), so one bounded traversal
// per side over-approximates the affected players without ever scanning
// the whole network.
func (g *Graph) MultiBFSWithinScratch(srcs []int32, k int, s *Scratch) []int32 {
	if k < 0 {
		panic("graph: negative radius")
	}
	s.begin(g.n)
	tail := 0
	for _, v := range srcs {
		g.check(int(v))
		if s.visit(v, 0) {
			s.queue[tail] = v
			tail++
		}
	}
	head := 0
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, w := range g.adj[u] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}

// MultiBFSWithin is MultiBFSWithinScratch on the immutable CSR snapshot.
func (c *CSR) MultiBFSWithin(srcs []int32, k int, s *Scratch) []int32 {
	if k < 0 {
		panic("graph: negative radius")
	}
	s.begin(c.n)
	tail := 0
	for _, v := range srcs {
		if v < 0 || int(v) >= c.n {
			panic("graph: source out of range")
		}
		if s.visit(v, 0) {
			s.queue[tail] = v
			tail++
		}
	}
	head := 0
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, w := range c.tgt[c.off[u]:c.off[u+1]] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}
