package graph

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist := make([]int, g.n)
	g.BFS(0, dist, nil)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components of g as vertex lists, ordered
// by their smallest vertex.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	dist := make([]int, g.n)
	queue := make([]int32, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		g.BFS(s, dist, queue)
		var members []int
		for v, d := range dist {
			if d != Unreachable && comp[v] < 0 {
				comp[v] = len(out)
				members = append(members, v)
			}
		}
		out = append(out, members)
	}
	return out
}

// Diameter returns the largest eccentricity. For a disconnected graph it
// returns Unreachable; for n <= 1 it returns 0.
func (g *Graph) Diameter() int {
	if g.n <= 1 {
		return 0
	}
	d := 0
	for _, e := range g.AllEccentricities() {
		if e > d {
			d = e
		}
	}
	return d
}

// Radius returns the smallest eccentricity. For a disconnected graph every
// eccentricity is Unreachable, so the radius is Unreachable too.
func (g *Graph) Radius() int {
	if g.n <= 1 {
		return 0
	}
	r := Unreachable
	for _, e := range g.AllEccentricities() {
		if e < r {
			r = e
		}
	}
	return r
}

// Girth returns the length of a shortest cycle in g, or Unreachable when g
// is acyclic. It runs a BFS from every vertex and detects the first
// cross/back edge closing a cycle, which is exact for unweighted graphs.
func (g *Graph) Girth() int {
	best := Unreachable
	dist := make([]int, g.n)
	parent := make([]int32, g.n)
	queue := make([]int32, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		dist[s] = 0
		queue[0] = int32(s)
		head, tail := 0, 1
		for head < tail {
			u := int(queue[head])
			head++
			if 2*dist[u] >= best {
				// No shorter cycle through s can be found deeper.
				break
			}
			for _, w := range g.adj[u] {
				if dist[w] == Unreachable {
					dist[w] = dist[u] + 1
					parent[w] = int32(u)
					queue[tail] = w
					tail++
				} else if int32(u) != parent[w] && parent[u] != w {
					// Non-tree edge closes a cycle through s of length
					// dist[u] + dist[w] + 1 (a lower bound that is attained
					// for the minimal such edge; scanning all sources makes
					// the overall minimum exact).
					if c := dist[u] + dist[int(w)] + 1; c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// AverageDegree returns 2m/n, or 0 for the empty vertex set.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}
