package graph

// CSR is a flat compressed-sparse-row snapshot of a Graph: the targets of
// vertex v are tgt[off[v]:off[v+1]], packed as int32 in the same order as
// the adjacency lists (BFS visit order — and therefore every downstream
// tie-break — is identical on both representations). A CSR is immutable
// and safe for concurrent traversals, each using its own Scratch; it does
// not track later mutations of the source Graph.
type CSR struct {
	n   int
	off []int32
	tgt []int32
}

// CSR returns a fresh flat snapshot of g.
func (g *Graph) CSR() *CSR { return g.CSRInto(nil) }

// CSRInto snapshots g into c, reusing c's buffers when large enough. A
// nil c allocates a new snapshot.
func (g *Graph) CSRInto(c *CSR) *CSR {
	if c == nil {
		c = &CSR{}
	}
	c.n = g.n
	if cap(c.off) < g.n+1 {
		c.off = make([]int32, g.n+1)
	}
	c.off = c.off[:g.n+1]
	if cap(c.tgt) < 2*g.m {
		c.tgt = make([]int32, 2*g.m)
	}
	c.tgt = c.tgt[:2*g.m]
	pos := int32(0)
	for v := 0; v < g.n; v++ {
		c.off[v] = pos
		pos += int32(copy(c.tgt[pos:], g.adj[v]))
	}
	c.off[g.n] = pos
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.off[v+1] - c.off[v]) }

// Neighbors returns the packed targets of v, aliasing the snapshot.
func (c *CSR) Neighbors(v int) []int32 { return c.tgt[c.off[v]:c.off[v+1]] }

// BFS runs a full breadth-first search from src, recording distances in
// the scratch (read them with s.Dist) and returning the visited vertices
// in BFS order (aliasing the scratch queue, valid until its next use).
func (c *CSR) BFS(src int, s *Scratch) []int32 {
	s.begin(c.n)
	s.visit(int32(src), 0)
	s.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		for _, w := range c.tgt[c.off[u]:c.off[u+1]] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}

// BFSWithin explores only vertices at distance at most k from src,
// returning them in BFS order; distances are readable through s.Dist.
func (c *CSR) BFSWithin(src, k int, s *Scratch) []int32 {
	if k < 0 {
		panic("graph: negative radius")
	}
	s.begin(c.n)
	s.visit(int32(src), 0)
	s.queue[0] = int32(src)
	head, tail := 0, 1
	for head < tail {
		u := s.queue[head]
		head++
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, w := range c.tgt[c.off[u]:c.off[u+1]] {
			if s.visit(w, du+1) {
				s.queue[tail] = w
				tail++
			}
		}
	}
	return s.queue[:tail]
}

// Dist returns the distance between u and v with an early-exit BFS.
func (c *CSR) Dist(u, v int, s *Scratch) int {
	if u == v {
		return 0
	}
	s.begin(c.n)
	s.visit(int32(u), 0)
	s.queue[0] = int32(u)
	head, tail := 0, 1
	for head < tail {
		x := s.queue[head]
		head++
		dx := s.dist[x]
		for _, w := range c.tgt[c.off[x]:c.off[x+1]] {
			if s.visit(w, dx+1) {
				if int(w) == v {
					return int(dx + 1)
				}
				s.queue[tail] = w
				tail++
			}
		}
	}
	return Unreachable
}

// Eccentricity returns the eccentricity of v (Unreachable when v's
// component does not cover the graph).
func (c *CSR) Eccentricity(v int, s *Scratch) int {
	visited := c.BFS(v, s)
	if len(visited) < c.n {
		return Unreachable
	}
	ecc := int32(0)
	for _, u := range visited {
		if d := s.dist[u]; d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// SumDistances returns the status of v: the sum of distances from v to
// every other vertex, counting Unreachable per missing vertex exactly as
// the full-slice BFS does.
func (c *CSR) SumDistances(v int, s *Scratch) int {
	visited := c.BFS(v, s)
	sum := 0
	for _, u := range visited {
		sum += int(s.dist[u])
	}
	return sum + (c.n-len(visited))*Unreachable
}
