package table

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRenderBasic(t *testing.T) {
	tb := New("Demo", "n", "value")
	tb.AddRow("10", "3.14")
	tb.AddRow("200", "2.72")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "| n   | value |") {
		t.Fatalf("header misaligned:\n%s", out)
	}
	if !strings.Contains(out, "| 200 | 2.72  |") {
		t.Fatalf("row misaligned:\n%s", out)
	}
}

func TestAddRowWrongArity(t *testing.T) {
	tb := New("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestAddRowf(t *testing.T) {
	tb := New("", "k", "mean", "f")
	tb.AddRowf(3, stats.Summary{Mean: 1.5, HalfWidth: 0.25}, 2.0)
	out := tb.String()
	if !strings.Contains(out, "1.50 ± 0.25") {
		t.Fatalf("summary formatting:\n%s", out)
	}
	if !strings.Contains(out, "| 3 ") {
		t.Fatalf("int formatting:\n%s", out)
	}
	if !strings.Contains(out, "| 2 ") {
		t.Fatalf("whole float should drop decimals:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(3) != "3" {
		t.Fatal("integer float")
	}
	if FormatFloat(3.14159) != "3.142" {
		t.Fatalf("got %s", FormatFloat(3.14159))
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	var b strings.Builder
	tb.RenderCSV(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines=%d:\n%s", len(lines), out)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header: %s", lines[0])
	}
	if lines[1] != `1,"x,y"` {
		t.Fatalf("quoting: %s", lines[1])
	}
	if lines[2] != `2,"say ""hi"""` {
		t.Fatalf("escaping: %s", lines[2])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("", "h")
	out := tb.String()
	if !strings.Contains(out, "| h |") {
		t.Fatalf("empty table render:\n%s", out)
	}
}
