// Package table renders experiment output as fixed-width ASCII tables and
// CSV, the two formats the cmd/ tools and the benchmark harness emit.
package table

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a simple column-oriented table with a title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; the cell count must match the header count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("table: row has %d cells, want %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf formats each value with %v and appends the row.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		case stats.Summary:
			cells[i] = FormatSummary(x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// FormatFloat renders floats compactly (integers without decimals).
func FormatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}

// FormatSummary renders "mean ± halfwidth" as in the paper's tables.
func FormatSummary(s stats.Summary) string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.HalfWidth)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (headers first, no title).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	fmt.Fprintf(w, "%s\n", strings.Join(out, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
