// Package bounds encodes the paper's theoretical Price-of-Anarchy results
// as evaluatable formulas and (α,k)-plane region classifiers: Figure 3's
// eight regions for MAXNCG (§3.3) and Figure 4's regions for SUMNCG (§4).
// Constants hidden inside Θ/Ω/O are set to 1; the functions reproduce the
// *shape* of the bounds, which is what the experiment harness compares
// against.
package bounds

import (
	"fmt"
	"math"
)

// log2 guards against non-positive arguments.
func log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// MaxRegion identifies a region of Figure 3 for MAXNCG.
type MaxRegion int

const (
	// MaxRegionFullKnowledge is the gray region: every LKE player sees the
	// whole network, so LKE ≡ NE (Corollary 3.14).
	MaxRegionFullKnowledge MaxRegion = iota
	// MaxRegion1 through MaxRegion8 are the numbered regions ①–⑧.
	MaxRegion1
	MaxRegion2
	MaxRegion3
	MaxRegion4
	MaxRegion5
	MaxRegion6
	MaxRegion7
	MaxRegion8
)

// String names the region as in Figure 3.
func (r MaxRegion) String() string {
	switch r {
	case MaxRegionFullKnowledge:
		return "NE≡LKE"
	case MaxRegion1, MaxRegion2, MaxRegion3, MaxRegion4, MaxRegion5, MaxRegion6, MaxRegion7, MaxRegion8:
		return fmt.Sprintf("region-%d", int(r))
	default:
		return "unknown"
	}
}

// ClassifyMax places a parameter triple in Figure 3's partition.
//
// Boundaries, following §3.3 (constants set to 1):
//   - gray (NE≡LKE): k > min{n, (nα²)^{1/3}, α·4^{√log n}} for α <= k-1
//     (Corollary 3.14) — above the dashed curves;
//   - the k = α+1 line splits the locality regions: below it (α >= k-1)
//     lie regions ②,③,⑥; above it ①,④,⑤,⑦,⑧;
//   - k vs log n and k vs 2^{√log n} split ①/④/⑤ and ②/③;
//   - α vs log n splits the right-hand regions ⑥,⑦,⑧ from the rest.
func ClassifyMax(n int, k int, alpha float64) MaxRegion {
	nf := float64(n)
	kf := float64(k)
	logn := log2(nf)
	sqrtLogN := math.Sqrt(math.Max(logn, 0))

	if alpha <= kf-1 {
		full := math.Min(nf, math.Min(math.Cbrt(nf*alpha*alpha), alpha*math.Pow(4, sqrtLogN)))
		if kf > full {
			return MaxRegionFullKnowledge
		}
	}
	aboveLine := kf >= alpha+1 // locality regions above k = α+1
	smallAlpha := alpha <= logn
	bigAlpha := alpha > nf
	midAlpha := !smallAlpha && !bigAlpha

	twoToSqrt := math.Pow(2, sqrtLogN)
	if aboveLine {
		switch {
		case kf <= logn && smallAlpha:
			return MaxRegion1
		case kf <= twoToSqrt && smallAlpha:
			return MaxRegion4
		case smallAlpha:
			return MaxRegion5
		case kf <= twoToSqrt && midAlpha:
			return MaxRegion7
		default:
			return MaxRegion8
		}
	}
	switch {
	case kf <= logn && !bigAlpha:
		return MaxRegion2
	case kf <= logn && bigAlpha:
		return MaxRegion3
	default:
		return MaxRegion6
	}
}

// MaxLowerBound evaluates the strongest applicable PoA lower bound from
// §3.1 at (n, k, α), constants set to 1. It returns 1 when no
// construction applies (e.g. the full-knowledge region).
func MaxLowerBound(n int, k int, alpha float64) float64 {
	nf := float64(n)
	kf := float64(k)
	best := 1.0
	// Lemma 3.1: α >= k−1 → Ω(n/(1+α)).
	if alpha >= kf-1 {
		if v := nf / (1 + alpha); v > best {
			best = v
		}
	}
	// Lemma 3.2: 2 <= k = o(log n), α >= 1 → Ω(n^{1/(2k−2)}).
	if k >= 2 && kf < log2(nf) && alpha >= 1 {
		if v := math.Pow(nf, 1/(2*kf-2)); v > best {
			best = v
		}
	}
	// Theorem 3.12: 1 < α <= k <= 2^{√log n − 3} →
	// Ω(n / (α · 2^{(log(k/α)+3)·log(k/α)})).
	if alpha > 1 && alpha <= kf && kf <= math.Pow(2, math.Sqrt(log2(nf))-3) {
		lk := log2(kf / alpha)
		denom := alpha * math.Pow(2, (lk+3)*lk)
		if v := nf / denom; v > best {
			best = v
		}
	}
	return best
}

// MaxUpperBound evaluates the Theorem 3.18 PoA upper bound at (n, k, α),
// constants set to 1.
func MaxUpperBound(n int, k int, alpha float64) float64 {
	nf := float64(n)
	kf := float64(k)
	density := math.Pow(nf, 2/math.Min(math.Max(alpha, 1e-9), 2*kf))
	if alpha >= kf-1 {
		// O(n^{2/min{α,2k}} + n/(1+α)).
		return density + nf/(1+alpha)
	}
	// α <= k−1: O(n^{2/α} + min{nα²/k², nk/(α·2^{(1/4)·log²(k/α)})}).
	diam1 := nf * alpha * alpha / (kf * kf)
	lk := log2(kf / alpha)
	diam2 := nf * kf / (alpha * math.Pow(2, lk*lk/4))
	return density + math.Min(diam1, diam2)
}

// FullKnowledgeMax reports whether (n,k,α) lies in the gray NE≡LKE region
// (Corollary 3.14).
func FullKnowledgeMax(n, k int, alpha float64) bool {
	return ClassifyMax(n, k, alpha) == MaxRegionFullKnowledge
}

// --- SUMNCG (Figure 4) ---

// SumRegion identifies a region of Figure 4 for SUMNCG.
type SumRegion int

const (
	// SumRegionFullKnowledge: k > 1 + 2√α → LKE ≡ NE (Theorem 4.4).
	SumRegionFullKnowledge SumRegion = iota
	// SumRegionStrong: k <= c·∛α and α <= n → PoA = Ω(n/k) (Theorem 4.2).
	SumRegionStrong
	// SumRegionLargeAlpha: k <= c·∛α and α > n → PoA = Ω(1 + n²/(kα)).
	SumRegionLargeAlpha
	// SumRegionDense: α >= kn, k >= 2 → PoA = Ω(n^{1/(2k−2)}) (Thm 4.3).
	SumRegionDense
	// SumRegionOpen: between the ∛α and √α curves — open in the paper.
	SumRegionOpen
)

// String names the region.
func (r SumRegion) String() string {
	switch r {
	case SumRegionFullKnowledge:
		return "NE≡LKE"
	case SumRegionStrong:
		return "Ω(n/k)"
	case SumRegionLargeAlpha:
		return "Ω(1+n²/(kα))"
	case SumRegionDense:
		return "Ω(max{n²/(kα), n^(1/(2k−2))})"
	case SumRegionOpen:
		return "open"
	default:
		return "unknown"
	}
}

// ClassifySum places a parameter triple in Figure 4's partition
// (constants c, c' set to 1).
func ClassifySum(n int, k int, alpha float64) SumRegion {
	kf := float64(k)
	if kf > 1+2*math.Sqrt(math.Max(alpha, 0)) {
		return SumRegionFullKnowledge
	}
	if alpha >= kf*float64(n) && k >= 2 {
		return SumRegionDense
	}
	if kf <= math.Cbrt(math.Max(alpha, 0)) {
		if alpha <= float64(n) {
			return SumRegionStrong
		}
		return SumRegionLargeAlpha
	}
	return SumRegionOpen
}

// SumLowerBound evaluates the strongest applicable SUMNCG PoA lower bound
// (Theorems 4.2 and 4.3), constants set to 1; 1 when none applies.
func SumLowerBound(n int, k int, alpha float64) float64 {
	nf := float64(n)
	kf := float64(k)
	best := 1.0
	// Theorem 4.2 needs α >= 4k³ and k <= √(2n/3) − 4.
	if alpha >= 4*kf*kf*kf && kf <= math.Sqrt(2*nf/3)-4 {
		if alpha <= nf {
			if v := nf / kf; v > best {
				best = v
			}
		} else if v := 1 + nf*nf/(kf*alpha); v > best {
			best = v
		}
	}
	// Theorem 4.3: α >= kn, k >= 2 → Ω(n^{1/(2k−2)}).
	if alpha >= kf*nf && k >= 2 {
		if v := math.Pow(nf, 1/(2*kf-2)); v > best {
			best = v
		}
	}
	return best
}

// FullKnowledgeSum reports Theorem 4.4's criterion k > 1 + 2√α.
func FullKnowledgeSum(k int, alpha float64) bool {
	return float64(k) > 1+2*math.Sqrt(math.Max(alpha, 0))
}

// Figure7Benchmark is the trend curve highlighted in Figure 7: with α >= 2
// and n fixed, the upper bound reduces to f(k) = k / 2^{log₂² k}
// (normalized so f(2) = 1 for plotting).
func Figure7Benchmark(k int) float64 {
	kf := float64(k)
	f := func(x float64) float64 { return x / math.Pow(2, log2(x)*log2(x)) }
	return f(kf) / f(2)
}
