package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassifyMaxFullKnowledge(t *testing.T) {
	// Huge k relative to n: every player sees everything.
	if r := ClassifyMax(100, 1000, 2); r != MaxRegionFullKnowledge {
		t.Fatalf("k=1000 n=100: region=%v, want full knowledge", r)
	}
	// Tiny k never grants full knowledge on a large network.
	if r := ClassifyMax(100000, 2, 2); r == MaxRegionFullKnowledge {
		t.Fatal("k=2 classified as full knowledge")
	}
}

func TestClassifyMaxLargeAlphaSmallK(t *testing.T) {
	// α > n with k below log n: region ③ (below the k=α+1 line, big α).
	if r := ClassifyMax(1000, 3, 5000); r != MaxRegion3 {
		t.Fatalf("region=%v, want region-3", r)
	}
	// Small α, small k, above the line: region ①.
	if r := ClassifyMax(100000, 8, 2); r != MaxRegion1 {
		t.Fatalf("region=%v, want region-1", r)
	}
}

func TestClassifyMaxRegionString(t *testing.T) {
	if MaxRegionFullKnowledge.String() != "NE≡LKE" {
		t.Fatal("gray region name")
	}
	if MaxRegion4.String() != "region-4" {
		t.Fatalf("got %s", MaxRegion4)
	}
	if MaxRegion(99).String() != "unknown" {
		t.Fatal("unknown region name")
	}
}

func TestMaxLowerBoundLemma31Dominates(t *testing.T) {
	// α huge, k small: Lemma 3.1 gives n/(1+α); Lemma 3.2 gives
	// n^{1/(2k-2)}. At α=n both are defined; check we take the max.
	n, k := 10000, 3
	lb := MaxLowerBound(n, k, float64(n))
	want := math.Pow(float64(n), 1.0/4) // n^{1/(2k-2)} = 10^1 = 10
	if lb < want-1e-9 {
		t.Fatalf("lb=%v, want >= %v", lb, want)
	}
}

func TestMaxLowerBoundTheorem312(t *testing.T) {
	// k = α: the Theorem 3.12 bound collapses to ~n/α (log(k/α)=0 → 2^0=1).
	// n must satisfy k <= 2^(√log n − 3), i.e. log n >= (log k + 3)².
	n := 1 << 25
	alpha := 4.0
	k := 4
	lb := MaxLowerBound(n, k, alpha)
	if want := float64(n) / alpha; math.Abs(lb-want)/want > 0.01 {
		t.Fatalf("lb=%v, want ≈ %v", lb, want)
	}
}

func TestMaxLowerBoundTrivialWhenNothingApplies(t *testing.T) {
	// α < 1 with large k: no construction applies → 1.
	if lb := MaxLowerBound(1000, 500, 0.5); lb != 1 {
		t.Fatalf("lb=%v, want 1", lb)
	}
}

func TestMaxUpperBoundShapes(t *testing.T) {
	// α >= k-1 branch: density + n/(1+α).
	n := 10000
	ub := MaxUpperBound(n, 2, 100)
	if ub < float64(n)/101 {
		t.Fatalf("upper bound %v below diameter term", ub)
	}
	// α <= k-1 branch is finite and positive.
	ub2 := MaxUpperBound(n, 50, 2)
	if ub2 <= 0 || math.IsInf(ub2, 0) || math.IsNaN(ub2) {
		t.Fatalf("bad upper bound %v", ub2)
	}
}

func TestQuickUpperAtLeastLowerWhereTight(t *testing.T) {
	// In the regions below k = α+1 the bounds are "essentially tight";
	// sanity: upper >= lower/constant for a grid of parameters. We allow
	// a slack factor because all hidden constants were set to 1.
	f := func(nRaw, kRaw, aRaw uint8) bool {
		n := 1000 + int(nRaw)*100
		k := 2 + int(kRaw%10)
		alpha := float64(k) + float64(aRaw%50) // α >= k → below the line
		lb := MaxLowerBound(n, k, alpha)
		ub := MaxUpperBound(n, k, alpha)
		return ub >= lb/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifySum(t *testing.T) {
	// k far above 1+2√α → full knowledge.
	if r := ClassifySum(1000, 50, 4); r != SumRegionFullKnowledge {
		t.Fatalf("region=%v, want NE≡LKE", r)
	}
	// k <= ∛α, α <= n → strong Ω(n/k).
	if r := ClassifySum(100000, 3, 64); r != SumRegionStrong {
		t.Fatalf("region=%v, want strong", r)
	}
	// k <= ∛α, α > n → large-α bound.
	if r := ClassifySum(50, 3, 1e6); r != SumRegionDense && r != SumRegionLargeAlpha {
		t.Fatalf("region=%v, want large-α or dense", r)
	}
	// Between the curves: open.
	if r := ClassifySum(100000, 5, 30); r != SumRegionOpen {
		t.Fatalf("region=%v, want open", r)
	}
}

func TestSumRegionStrings(t *testing.T) {
	for _, r := range []SumRegion{SumRegionFullKnowledge, SumRegionStrong, SumRegionLargeAlpha, SumRegionDense, SumRegionOpen} {
		if r.String() == "unknown" {
			t.Fatalf("region %d has no name", int(r))
		}
	}
	if SumRegion(99).String() != "unknown" {
		t.Fatal("unknown sum region name")
	}
}

func TestSumLowerBound(t *testing.T) {
	// Theorem 4.2 regime: α = 4k³, α <= n → Ω(n/k).
	n, k := 100000, 5
	alpha := 4.0 * 125
	lb := SumLowerBound(n, k, alpha)
	if want := float64(n) / float64(k); lb < want-1e-9 {
		t.Fatalf("lb=%v, want >= %v", lb, want)
	}
	// No construction: tiny α.
	if lb := SumLowerBound(1000, 10, 0.5); lb != 1 {
		t.Fatalf("lb=%v, want 1", lb)
	}
}

func TestSumLowerBoundLargeAlpha(t *testing.T) {
	// α > n with α >= 4k³: Ω(1 + n²/(kα)).
	n, k := 100, 2
	alpha := 1000.0
	lb := SumLowerBound(n, k, alpha)
	want := 1 + float64(n)*float64(n)/(float64(k)*alpha)
	if lb < want-1e-9 {
		t.Fatalf("lb=%v, want >= %v", lb, want)
	}
}

func TestFullKnowledgeSum(t *testing.T) {
	if !FullKnowledgeSum(10, 4) { // 10 > 1+4
		t.Fatal("k=10 α=4 should be full knowledge")
	}
	if FullKnowledgeSum(5, 4) { // 5 <= 5
		t.Fatal("k=5 α=4 should not be full knowledge")
	}
}

func TestFigure7Benchmark(t *testing.T) {
	if f := Figure7Benchmark(2); math.Abs(f-1) > 1e-9 {
		t.Fatalf("f(2)=%v, want 1 (normalized)", f)
	}
	// The curve rises then falls: f(4) > f(2) is false?
	// f(x) = x/2^{log² x}: f(2)=2/2=1, f(4)=4/2^4=0.25 — decreasing.
	if Figure7Benchmark(4) >= Figure7Benchmark(2) {
		t.Fatal("benchmark should decrease by k=4")
	}
	if Figure7Benchmark(32) >= Figure7Benchmark(8) {
		t.Fatal("benchmark should keep decreasing")
	}
}

func TestClassifyMaxCoversPlane(t *testing.T) {
	// Every grid point must classify into some region without panicking.
	for _, n := range []int{50, 1000, 100000} {
		for _, k := range []int{1, 2, 5, 10, 100, 10000} {
			for _, a := range []float64{0.1, 1, 2, 10, 1e3, 1e6} {
				r := ClassifyMax(n, k, a)
				if r.String() == "unknown" {
					t.Fatalf("unclassified point n=%d k=%d α=%g", n, k, a)
				}
			}
		}
	}
}
