// Package cellbench is the cell hot-path performance artifact: with
// BENCH_OUT set, TestBenchCell runs the best-response and swap
// neighborhood benchmarks programmatically and writes their ns/op and
// allocs/op as JSON (committed as BENCH_cell.json at the repo root), so
// the hot path's allocation trajectory is tracked — and gated — across
// PRs alongside the scheduler artifact (BENCH_sched.json).
package cellbench

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/bestresponse"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/swap"
)

// cellBench is one benchmark's measurement. Allocs/op is the regression
// gate (CI fails when it grows past the committed baseline); ns/op is
// informational — CI machines are too noisy to gate on time. The
// RunToConvergence rows additionally carry the run shape: player count,
// rounds to convergence, and responder evaluations per round, whose
// strictly-below-players property CI asserts (the event-driven engine's
// contract that rounds cost what actually changed).
type cellBench struct {
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	Players       int     `json:"players,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	EvalsPerRound float64 `json:"evals_per_round,omitempty"`
}

// benchState mirrors the fixture of the per-package benchmarks: a random
// tree with randomly assigned edge owners, seed 1.
func benchState(n int) *game.State {
	rng := rand.New(rand.NewSource(1))
	return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
}

// gnpState seeds the convergence benchmarks: a connected G(n,p) with
// random owners is dense enough to be far from equilibrium (random trees
// are already stable for the benchmark α), so the runs make real moves.
func gnpState(n int, p float64) *game.State {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.GNPConnected(n, p, rng, 50)
	if err != nil {
		panic(err)
	}
	return game.FromGraphRandomOwners(g, rng)
}

// TestBenchCell writes BENCH_cell.json when BENCH_OUT names the output
// path; without it the test is a no-op skip so the regular suite never
// pays for the measurement. The cases mirror the Benchmark functions in
// internal/bestresponse and internal/swap one for one.
func TestBenchCell(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<path> to measure and write BENCH_cell.json")
	}

	s100 := benchState(100)
	s60 := benchState(60)
	sumStrategy := []int{1, 2}
	cases := []struct {
		name string
		fn   func(i int)
	}{
		{"MaxBestResponseLocal", func(i int) { bestresponse.MaxBestResponse(s100, i%100, 3, 2) }},
		{"MaxBestResponseFullKnowledge", func(i int) { bestresponse.MaxBestResponse(s100, i%100, 1000, 2) }},
		{"MaxGreedyResponse", func(i int) { bestresponse.MaxGreedyResponse(s100, i%100, 3, 2) }},
		{"SumDelta", func(i int) { bestresponse.SumDelta(s100, 0, 3, 2, sumStrategy) }},
		{"SumGreedyResponse", func(i int) { bestresponse.SumGreedyResponse(s60, i%60, 2, 2) }},
		{"BestSwapSum", func(i int) { swap.BestSwap(s100, i%100, 3, swap.SumDist) }},
		{"BestSwapMax", func(i int) { swap.BestSwap(s100, i%100, 3, swap.MaxEcc) }},
	}

	results := make(map[string]cellBench, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.fn(i)
			}
		})
		results[c.name] = cellBench{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		t.Logf("%s: %.0f ns/op, %d allocs/op, %d B/op",
			c.name, results[c.name].NsPerOp, results[c.name].AllocsPerOp, results[c.name].BytesPerOp)
	}

	for name, row := range convergenceRows(t) {
		results[name] = row
	}

	payload := struct {
		Benchmarks  map[string]cellBench `json:"benchmarks"`
		GeneratedAt string               `json:"generated_at"`
	}{Benchmarks: results, GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// convergenceRows measures full dynamics runs to convergence for
// representative (α, k) cells — the end-to-end number the event-driven
// engine exists to improve. Each row records the run shape (players,
// rounds, responder evaluations per round) alongside the usual
// measurements; the matching *Eager row re-runs the same cell through the
// evaluate-everyone loop as the wall-clock baseline and carries no shape
// (its evaluations are rounds×players by construction).
func convergenceRows(t *testing.T) map[string]cellBench {
	t.Helper()
	cases := []struct {
		name    string
		n       int
		p       float64
		variant game.Variant
		alpha   float64
		k       int
		eager   bool
		dialect string // "" best-response, "swap", "large-neighborhood"
	}{
		{name: "RunToConvergenceMaxLocal", n: 100, p: 0.06, variant: game.Max, alpha: 2, k: 3},
		{name: "RunToConvergenceMaxLocalEager", n: 100, p: 0.06, variant: game.Max, alpha: 2, k: 3, eager: true},
		{name: "RunToConvergenceMaxFull", n: 100, p: 0.06, variant: game.Max, alpha: 2, k: 1000},
		{name: "RunToConvergenceSum", n: 60, p: 0.2, variant: game.Sum, alpha: 2, k: 2},
		{name: "RunToConvergenceSwap", n: 100, p: 0.06, variant: game.Sum, alpha: 1, k: 1000, dialect: "swap"},
		{name: "RunToConvergenceLargeNbr", n: 60, p: 0.2, variant: game.Sum, alpha: 2, k: 2, dialect: "large-neighborhood"},
	}
	rows := make(map[string]cellBench, len(cases))
	evals := make(map[string]int, len(cases))
	for _, c := range cases {
		proto := gnpState(c.n, c.p)
		cfg := dynamics.DefaultConfig(c.variant, c.alpha, c.k)
		switch c.dialect {
		case "swap":
			cfg.Responder = dynamics.SwapResponder(c.variant)
			cfg.NewResponder = nil
		case "large-neighborhood":
			cfg.NewResponder = dynamics.NewLargeNeighborhoodResponder(c.variant)
		}
		if c.eager {
			cfg.Activation = dynamics.ActivationEager
		}
		probe := dynamics.Run(proto.Clone(), cfg)
		if probe.Status != dynamics.Converged {
			t.Fatalf("%s: dynamics did not converge (%v after %d rounds)", c.name, probe.Status, probe.Rounds)
		}
		evals[c.name] = probe.Evaluations
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := proto.Clone()
				b.StartTimer()
				dynamics.Run(s, cfg)
			}
		})
		row := cellBench{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if !c.eager {
			row.Players = c.n
			row.Rounds = probe.Rounds
			row.EvalsPerRound = float64(probe.Evaluations) / float64(probe.Rounds)
			if row.EvalsPerRound >= float64(c.n) {
				t.Fatalf("%s: %.1f evaluations per round is not below n=%d — dirty-set skipping is broken",
					c.name, row.EvalsPerRound, c.n)
			}
		}
		rows[c.name] = row
		t.Logf("%s: %.0f ns/op, %d allocs/op, rounds=%d evals=%d",
			c.name, row.NsPerOp, row.AllocsPerOp, probe.Rounds, probe.Evaluations)
	}
	if evals["RunToConvergenceMaxLocal"] >= evals["RunToConvergenceMaxLocalEager"] {
		t.Fatalf("event-driven run made %d evaluations, eager baseline made %d — no work was skipped",
			evals["RunToConvergenceMaxLocal"], evals["RunToConvergenceMaxLocalEager"])
	}
	return rows
}
