// Package cellbench is the cell hot-path performance artifact: with
// BENCH_OUT set, TestBenchCell runs the best-response and swap
// neighborhood benchmarks programmatically and writes their ns/op and
// allocs/op as JSON (committed as BENCH_cell.json at the repo root), so
// the hot path's allocation trajectory is tracked — and gated — across
// PRs alongside the scheduler artifact (BENCH_sched.json).
package cellbench

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/bestresponse"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/swap"
)

// cellBench is one benchmark's measurement. Allocs/op is the regression
// gate (CI fails when it grows past the committed baseline); ns/op is
// informational — CI machines are too noisy to gate on time.
type cellBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchState mirrors the fixture of the per-package benchmarks: a random
// tree with randomly assigned edge owners, seed 1.
func benchState(n int) *game.State {
	rng := rand.New(rand.NewSource(1))
	return game.FromGraphRandomOwners(gen.RandomTree(n, rng), rng)
}

// TestBenchCell writes BENCH_cell.json when BENCH_OUT names the output
// path; without it the test is a no-op skip so the regular suite never
// pays for the measurement. The cases mirror the Benchmark functions in
// internal/bestresponse and internal/swap one for one.
func TestBenchCell(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<path> to measure and write BENCH_cell.json")
	}

	s100 := benchState(100)
	s60 := benchState(60)
	sumStrategy := []int{1, 2}
	cases := []struct {
		name string
		fn   func(i int)
	}{
		{"MaxBestResponseLocal", func(i int) { bestresponse.MaxBestResponse(s100, i%100, 3, 2) }},
		{"MaxBestResponseFullKnowledge", func(i int) { bestresponse.MaxBestResponse(s100, i%100, 1000, 2) }},
		{"MaxGreedyResponse", func(i int) { bestresponse.MaxGreedyResponse(s100, i%100, 3, 2) }},
		{"SumDelta", func(i int) { bestresponse.SumDelta(s100, 0, 3, 2, sumStrategy) }},
		{"SumGreedyResponse", func(i int) { bestresponse.SumGreedyResponse(s60, i%60, 2, 2) }},
		{"BestSwapSum", func(i int) { swap.BestSwap(s100, i%100, 3, swap.SumDist) }},
		{"BestSwapMax", func(i int) { swap.BestSwap(s100, i%100, 3, swap.MaxEcc) }},
	}

	results := make(map[string]cellBench, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.fn(i)
			}
		})
		results[c.name] = cellBench{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		t.Logf("%s: %.0f ns/op, %d allocs/op, %d B/op",
			c.name, results[c.name].NsPerOp, results[c.name].AllocsPerOp, results[c.name].BytesPerOp)
	}

	payload := struct {
		Benchmarks  map[string]cellBench `json:"benchmarks"`
		GeneratedAt string               `json:"generated_at"`
	}{Benchmarks: results, GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
