// Package hardness implements the NP-hardness reductions sketched in §2:
// computing a best response in MAXNCG (k >= 1, α = 2/n) and SUMNCG
// (k >= 2, 1 < α < 2) is NP-hard by reduction from MINIMUM DOMINATING
// SET. The reduction — from Fabrikant et al. and Mihalák–Schlegel,
// adapted to the local-knowledge games — attaches a fresh player to every
// vertex of the instance graph; her best response is exactly to buy edges
// towards a minimum dominating set.
//
// The package builds the reduction instance and extracts the dominating
// set back from a best response, so tests can certify the equivalence
// constructively (and, conversely, the best-response machinery can be
// validated against the independent MDS solver).
package hardness

import (
	"fmt"

	"repro/internal/bestresponse"
	"repro/internal/game"
	"repro/internal/graph"
)

// Instance is a built reduction: the game state contains the original
// graph on vertices 0..n-1 plus the joining player with id n, initially
// buying edges to every original vertex (the paper's "new player is
// initially buying all the edges towards all the other players").
type Instance struct {
	// State is the game state (n+1 players).
	State *game.State
	// Joiner is the id of the added player (= original n).
	Joiner int
	// Original is the instance graph the dominating set is sought in.
	Original *graph.Graph
}

// Build constructs the reduction instance for an arbitrary connected
// instance graph g. Ownership of g's edges is irrelevant to the joiner's
// best response; each is assigned to its lower endpoint.
func Build(g *graph.Graph) (*Instance, error) {
	if g.N() < 1 {
		return nil, fmt.Errorf("hardness: empty instance graph")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("hardness: instance graph must be connected")
	}
	n := g.N()
	s := game.NewState(n + 1)
	for _, e := range g.Edges() {
		s.Buy(e.U, e.V)
	}
	all := make([]int, n)
	for v := 0; v < n; v++ {
		all[v] = v
	}
	s.SetStrategy(n, all)
	return &Instance{State: s, Joiner: n, Original: g.Clone()}, nil
}

// MaxAlpha returns the α used by the MAXNCG reduction (α = 2/n): with
// this price, buying towards a dominating set (eccentricity 2) is optimal
// and every smaller purchase forces eccentricity >= 3, which costs more
// than the saved edges.
func (in *Instance) MaxAlpha() float64 { return 2.0 / float64(in.Original.N()) }

// JoinerBestResponse computes the joining player's exact best response in
// MAXNCG at the reduction's α. Since the joiner is adjacent to everyone,
// her view at any k >= 1 is the whole network — exactly the paper's
// argument that the reduction carries over to the local game.
func (in *Instance) JoinerBestResponse(k int) bestresponse.Response {
	return bestresponse.MaxBestResponse(in.State, in.Joiner, k, in.MaxAlpha())
}

// DominatingSetFromResponse interprets a joiner strategy as a vertex set
// of the original graph and reports whether it dominates it.
func (in *Instance) DominatingSetFromResponse(strategy []int) ([]int, bool) {
	set := make([]int, 0, len(strategy))
	for _, v := range strategy {
		if v == in.Joiner {
			return nil, false
		}
		set = append(set, v)
	}
	covered := make([]bool, in.Original.N())
	for _, v := range set {
		covered[v] = true
		for _, w := range in.Original.Neighbors(v) {
			covered[w] = true
		}
	}
	for _, c := range covered {
		if !c {
			return set, false
		}
	}
	return set, true
}

// DominationNumberViaBestResponse recovers γ(g) by solving the joiner's
// best response — the constructive direction of the reduction. It panics
// if the response does not decode to a dominating set (which would
// falsify the reduction or the responder).
func DominationNumberViaBestResponse(g *graph.Graph, k int) (int, error) {
	in, err := Build(g)
	if err != nil {
		return 0, err
	}
	r := in.JoinerBestResponse(k)
	set, ok := in.DominatingSetFromResponse(r.Strategy)
	if !ok {
		return 0, fmt.Errorf("hardness: best response %v is not a dominating set", r.Strategy)
	}
	return len(set), nil
}
