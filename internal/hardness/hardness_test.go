package hardness

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/mds"
)

func TestBuildRejectsBadInstances(t *testing.T) {
	if _, err := Build(gen.Path(0)); err == nil {
		t.Fatal("empty graph accepted")
	}
	dg := gen.Path(5)
	dg.RemoveEdge(2, 3)
	if _, err := Build(dg); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, err := Build(gen.Path(3)); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceShape(t *testing.T) {
	g := gen.Star(6)
	in, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if in.Joiner != 6 || in.State.N() != 7 {
		t.Fatalf("joiner=%d n=%d", in.Joiner, in.State.N())
	}
	if in.State.BoughtCount(in.Joiner) != 6 {
		t.Fatalf("joiner buys %d edges, want 6", in.State.BoughtCount(in.Joiner))
	}
	if in.State.Graph().Degree(in.Joiner) != 6 {
		t.Fatal("joiner not adjacent to everyone")
	}
	if err := in.State.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinerBestResponseIsDominatingSet(t *testing.T) {
	// On a star the minimum dominating set is the center: the joiner
	// should keep exactly one edge.
	in, err := Build(gen.Star(10))
	if err != nil {
		t.Fatal(err)
	}
	r := in.JoinerBestResponse(2)
	set, dominates := in.DominatingSetFromResponse(r.Strategy)
	if !dominates {
		t.Fatalf("response %v does not dominate", r.Strategy)
	}
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("star best response=%v, want the center", set)
	}
}

func TestDominationNumberMatchesSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		g := gen.RandomTree(n, rng)
		// Keep γ < n/2 so the reduction's cost calculus is strict: pad
		// with a dominating-friendly star overlay when needed.
		gamma := len(mds.MinDominatingExtra(g, nil))
		if 2*gamma >= n {
			continue
		}
		got, err := DominationNumberViaBestResponse(g, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != gamma {
			t.Fatalf("trial %d: reduction gives %d, solver gives %d", trial, got, gamma)
		}
	}
}

func TestDominationNumberVariousK(t *testing.T) {
	// The joiner sees everything at any k >= 1 (she is adjacent to all
	// players), so the answer must not depend on k.
	g := gen.Path(9) // γ(P9) = 3
	for _, k := range []int{1, 2, 5, 1000} {
		got, err := DominationNumberViaBestResponse(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != 3 {
			t.Fatalf("k=%d: γ=%d, want 3", k, got)
		}
	}
}

func TestDominatingSetFromResponseRejectsJoiner(t *testing.T) {
	in, err := Build(gen.Path(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.DominatingSetFromResponse([]int{in.Joiner}); ok {
		t.Fatal("self-reference accepted")
	}
	if _, ok := in.DominatingSetFromResponse([]int{0}); ok {
		t.Fatal("non-dominating set accepted") // 0 does not dominate P4
	}
}

func TestMaxAlpha(t *testing.T) {
	in, err := Build(gen.Path(8))
	if err != nil {
		t.Fatal(err)
	}
	if in.MaxAlpha() != 0.25 {
		t.Fatalf("α=%v, want 2/8", in.MaxAlpha())
	}
}
