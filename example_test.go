package ncg_test

import (
	"fmt"
	"math/rand"

	ncg "repro"
)

// The canonical flow: random start, locality-constrained dynamics,
// equilibrium audit.
func Example() {
	rng := rand.New(rand.NewSource(1))
	s := ncg.RandomState(30, rng)
	cfg := ncg.DefaultConfig(ncg.MaxNCG, 2, 3)
	res := ncg.Run(s, cfg)
	fmt.Println(res.Status, ncg.IsLKE(res.Final, cfg))
	// Output: converged true
}

// Computing a single exact best response under locality (§5.3 reduction).
func ExampleMaxBestResponse() {
	s := ncg.FromGraphLowOwners(ncg.Path(7))
	r := ncg.MaxBestResponse(s, 0, 6, 0.5)
	fmt.Println(r.Improving, r.Strategy)
	// Output: true [2 5]
}

// The SUMNCG frontier guard of Proposition 2.2: moves that could push
// frontier vertices beyond distance k are never improving.
func ExampleSumDelta() {
	s := ncg.FromGraphLowOwners(ncg.Path(5))
	// Player 2 owns (2,3); dropping it risks an unbounded hidden tail.
	delta := ncg.SumDelta(s, 2, 2, 0.1, []int{})
	fmt.Println(delta > 1e6)
	// Output: true
}

// The §2 NP-hardness reduction doubles as a dominating-set solver.
func ExampleDominationNumber() {
	gamma, err := ncg.DominationNumber(ncg.CycleG(12), 2)
	fmt.Println(gamma, err)
	// Output: 4 <nil>
}

// Classical stability thresholds for the canonical profiles.
func ExampleStarIsNESum() {
	fmt.Println(ncg.StarIsNESum(10, 0.5), ncg.StarIsNESum(10, 2))
	// Output: false true
}
