// Package ncg is the public API of the locality-based network creation
// games library — a from-scratch Go reproduction of Bilò, Gualà, Leucci,
// and Proietti, "Locality-based Network Creation Games" (SPAA 2014 / ACM
// TOPC 2016).
//
// The library models n selfish players building a network: each player
// buys incident edges at price α and pays a usage cost — her eccentricity
// (MAXNCG) or the sum of her distances (SUMNCG). Under the locality model
// every player sees only her k-neighborhood, and stability is captured by
// the Local Knowledge Equilibrium (LKE): no player has a move that
// improves her cost in the worst case over all networks consistent with
// her view.
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	s := ncg.FromGraphRandomOwners(ncg.RandomTree(50, rng), rng)
//	cfg := ncg.DefaultConfig(ncg.MaxNCG, 2 /* α */, 3 /* k */)
//	res := ncg.Run(s, cfg)
//	fmt.Println(res.Status, res.FinalStats.Quality)
//
// The facade re-exports the core types; the full machinery (constructions,
// bounds, experiment drivers) lives in the internal packages and is
// exercised through cmd/ tools and the benchmark harness.
package ncg

import (
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/bestresponse"
	"repro/internal/bounds"
	"repro/internal/classic"
	"repro/internal/dynamics"
	"repro/internal/game"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hardness"
	"repro/internal/ncgio"
	"repro/internal/view"
)

// Core graph and game types.
type (
	// Graph is an undirected simple graph on vertices 0..n-1.
	Graph = graph.Graph
	// State is a strategy profile plus its induced network.
	State = game.State
	// Variant selects MAXNCG or SUMNCG.
	Variant = game.Variant
	// View is a player's k-neighborhood.
	View = view.View
	// Response is a best-response computation outcome.
	Response = bestresponse.Response
	// Config parameterizes a dynamics run.
	Config = dynamics.Config
	// Result is a dynamics outcome.
	Result = dynamics.Result
	// Status describes how a dynamics run ended.
	Status = dynamics.Status
	// Cell is one (α, k, seed) point of an experiment sweep.
	Cell = dynamics.Cell
	// CellResult pairs a cell with its outcome.
	CellResult = dynamics.CellResult
	// Factory builds a starting state for a sweep cell.
	Factory = dynamics.Factory
)

// Game variants.
const (
	// MaxNCG: player cost = α·|σ_u| + eccentricity (Eq. 2).
	MaxNCG = game.Max
	// SumNCG: player cost = α·|σ_u| + Σ distances (Eq. 1).
	SumNCG = game.Sum
)

// Dynamics statuses.
const (
	Converged  = dynamics.Converged
	Cycled     = dynamics.Cycled
	RoundLimit = dynamics.RoundLimit
)

// Graph constructors.
var (
	// NewGraph returns an empty graph on n vertices.
	NewGraph = graph.New
	// Path, Cycle, Star, Complete, Grid, Torus are deterministic families.
	Path     = gen.Path
	CycleG   = gen.Cycle
	Star     = gen.Star
	Complete = gen.Complete
	Grid     = gen.Grid
	Torus    = gen.Torus
	// RandomTree samples a uniform labelled tree (Prüfer decoding).
	RandomTree = gen.RandomTree
	// GNP and GNPConnected sample Erdős–Rényi graphs.
	GNP          = gen.GNP
	GNPConnected = gen.GNPConnected
)

// State constructors.
var (
	// NewState returns an empty profile on n players.
	NewState = game.NewState
	// FromGraphRandomOwners assigns each edge to a fair-coin endpoint.
	FromGraphRandomOwners = game.FromGraphRandomOwners
	// FromGraphLowOwners assigns each edge to its lower-id endpoint.
	FromGraphLowOwners = game.FromGraphLowOwners
)

// Costs and social objectives.
var (
	PlayerCost        = game.PlayerCost
	SocialCost        = game.SocialCost
	OptimumSocialCost = game.OptimumSocialCost
	Quality           = game.Quality
	Unfairness        = game.Unfairness
)

// Locality machinery.
var (
	// ExtractView returns the k-neighborhood view of a player.
	ExtractView = view.Extract
	// MaxBestResponse is the exact MAXNCG best response (§5.3 reduction).
	MaxBestResponse = bestresponse.MaxBestResponse
	// SumDelta evaluates the worst-case SUMNCG cost change (Prop. 2.2).
	SumDelta = bestresponse.SumDelta
)

// Dynamics.
var (
	// Run executes round-robin best-response dynamics (§5.1).
	Run = dynamics.Run
	// RunContext is Run with cancellation, checked between rounds.
	RunContext = dynamics.RunContext
	// DefaultConfig mirrors the paper's setup for a variant.
	DefaultConfig = dynamics.DefaultConfig
	// IsLKE audits a state for stability under the configured responder.
	IsLKE = dynamics.IsLKE
	// SweepGrid expands α×k×seed grids; Sweep runs them in parallel.
	SweepGrid = dynamics.Grid
	Sweep     = dynamics.Sweep
	// SweepContext is Sweep with cancellation, resume (skip already-known
	// cells), and in-order result streaming — the engine under the
	// ncg-server sweep daemon (internal/sweepd).
	SweepContext = dynamics.SweepContext
)

// SweepOptions tunes SweepContext (worker count, reuse hook, streaming).
type SweepOptions = dynamics.SweepOptions

// Theory (PoA bounds, Figures 3–4).
var (
	MaxPoALowerBound = bounds.MaxLowerBound
	MaxPoAUpperBound = bounds.MaxUpperBound
	SumPoALowerBound = bounds.SumLowerBound
	FullKnowledgeMax = bounds.FullKnowledgeMax
	FullKnowledgeSum = bounds.FullKnowledgeSum
)

// RandomState builds a random-tree starting state in one call — the most
// common setup in the paper's experiments.
func RandomState(n int, rng *rand.Rand) *State {
	return FromGraphRandomOwners(RandomTree(n, rng), rng)
}

// Classical full-knowledge baselines (the games the paper compares to).
var (
	// ClassicBestResponse is the full-knowledge exact best response.
	ClassicBestResponse = classic.BestResponse
	// ClassicIsNE audits classical Nash stability.
	ClassicIsNE = classic.IsNE
	// StarIsNEMax / StarIsNESum are the canonical stability thresholds.
	StarIsNEMax = classic.StarIsNEMax
	StarIsNESum = classic.StarIsNESum
)

// Analysis and persistence.
var (
	// Analyze builds a structural equilibrium report.
	Analyze = analysis.Analyze
	// SaveState / LoadState serialize strategy profiles as JSON.
	SaveState = ncgio.EncodeState
	LoadState = ncgio.DecodeState
)

// AnalysisReport is the structural snapshot returned by Analyze.
type AnalysisReport = analysis.Report

// DominationNumber computes γ(g) through the §2 NP-hardness reduction: a
// joining player's best response buys edges to a minimum dominating set.
func DominationNumber(g *Graph, k int) (int, error) {
	return hardness.DominationNumberViaBestResponse(g, k)
}
